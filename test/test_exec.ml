(* Tests for the Ir_exec domain pool: ordering determinism across worker
   counts, edge cases (empty input, more workers than items), exception
   propagation, and the jobs-resolution chain.

   The suite opts into oversubscription: its multi-worker cases exist to
   exercise real cross-domain scheduling (and to pin the historical
   pool-stats shape), which the hardware clamp would otherwise collapse
   to a single worker on a small CI box. *)
let () = Ir_exec.set_allow_oversubscribe true

let check_int_array msg expected actual =
  Alcotest.(check (array int)) msg expected actual

let test_hardware_clamp () =
  (* With oversubscription off (the default), an outsized [?jobs] request
     spawns at most [hardware_jobs] workers; results are unaffected. *)
  Ir_exec.set_allow_oversubscribe false;
  Fun.protect ~finally:(fun () -> Ir_exec.set_allow_oversubscribe true)
  @@ fun () ->
  let xs = Array.init 64 (fun i -> i) in
  check_int_array "clamped run matches" (Array.map (fun x -> x + 1) xs)
    (Ir_exec.parallel_map ~jobs:16 (fun x -> x + 1) xs);
  match Ir_exec.last_pool_stats () with
  | None -> Alcotest.fail "no pool stats"
  | Some st ->
      Alcotest.(check int)
        "workers clamped to hardware"
        (min 16 (Ir_exec.hardware_jobs ()))
        st.Ir_exec.jobs

let test_matches_sequential () =
  let xs = Array.init 57 (fun i -> i) in
  let f x = (x * 37) mod 101 in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      check_int_array
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Ir_exec.parallel_map ~jobs f xs))
    [ 1; 2; 4; 9 ]

let test_empty () =
  check_int_array "empty input" [||]
    (Ir_exec.parallel_map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (list int))
    "empty list" []
    (Ir_exec.parallel_list_map ~jobs:4 (fun x -> x) [])

let test_jobs_exceed_items () =
  (* More workers than elements: jobs is clamped to the item count, so no
     domain spins on an empty range. *)
  check_int_array "jobs=16 over 3 items" [| 2; 4; 6 |]
    (Ir_exec.parallel_map ~jobs:16 (fun x -> 2 * x) [| 1; 2; 3 |])

let test_singleton_sequential () =
  (* jobs=1 must not spawn: detectable because Domain.self () is stable. *)
  let self = Domain.self () in
  let seen = ref None in
  ignore
    (Ir_exec.parallel_map ~jobs:1
       (fun x ->
         seen := Some (Domain.self ());
         x)
       [| 1; 2; 3 |]);
  Alcotest.(check bool) "ran on the calling domain" true (!seen = Some self)

exception Boom of int

let test_exception_propagation () =
  (* Multiple elements raise; the lowest-indexed exception must win,
     independent of scheduling. *)
  List.iter
    (fun jobs ->
      match
        Ir_exec.parallel_map ~jobs
          (fun x -> if x mod 3 = 2 then raise (Boom x) else x)
          (Array.init 20 (fun i -> i))
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom i ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d lowest index wins" jobs)
            2 i)
    [ 1; 2; 4 ]

let test_chunked_equivalence () =
  let xs = Array.init 100 (fun i -> i) in
  let f x = x * x in
  let expected = Array.map f xs in
  List.iter
    (fun chunk ->
      check_int_array
        (Printf.sprintf "chunk=%d" chunk)
        expected
        (Ir_exec.parallel_map_chunked ~jobs:4 ~chunk f xs))
    [ 1; 3; 7; 100; 1000 ];
  check_int_array "default chunk" expected
    (Ir_exec.parallel_map_chunked ~jobs:4 f xs);
  Alcotest.check_raises "chunk must be positive"
    (Invalid_argument "Ir_exec.parallel_map_chunked: chunk must be > 0")
    (fun () ->
      ignore (Ir_exec.parallel_map_chunked ~jobs:2 ~chunk:0 f xs))

let test_list_map_order () =
  Alcotest.(check (list string))
    "order preserved"
    [ "0"; "1"; "2"; "3"; "4" ]
    (Ir_exec.parallel_list_map ~jobs:3 string_of_int [ 0; 1; 2; 3; 4 ])

let test_jobs_resolution () =
  (* override > IA_RANK_JOBS > recommended, and the override clamps to
     >= 1.  Restore a clean state afterwards: the suite shares the
     process-global default. *)
  Fun.protect
    ~finally:(fun () ->
      Ir_exec.set_default_jobs None;
      Unix.putenv "IA_RANK_JOBS" "")
    (fun () ->
      Ir_exec.set_default_jobs None;
      Unix.putenv "IA_RANK_JOBS" "";
      Alcotest.(check int)
        "no override, no env" (Ir_exec.recommended_jobs ())
        (Ir_exec.default_jobs ());
      Unix.putenv "IA_RANK_JOBS" "6";
      Alcotest.(check int) "env honoured" 6 (Ir_exec.default_jobs ());
      Unix.putenv "IA_RANK_JOBS" "garbage";
      Alcotest.(check int)
        "bad env ignored" (Ir_exec.recommended_jobs ())
        (Ir_exec.default_jobs ());
      Unix.putenv "IA_RANK_JOBS" "6";
      Ir_exec.set_default_jobs (Some 3);
      Alcotest.(check int) "override beats env" 3 (Ir_exec.default_jobs ());
      Ir_exec.set_default_jobs (Some 0);
      Alcotest.(check int) "override clamps to 1" 1 (Ir_exec.default_jobs ()))

let test_with_default_jobs () =
  Fun.protect
    ~finally:(fun () ->
      Ir_exec.set_default_jobs None;
      Unix.putenv "IA_RANK_JOBS" "")
    (fun () ->
      Unix.putenv "IA_RANK_JOBS" "";
      (* restores the previous override, not merely None *)
      Ir_exec.set_default_jobs (Some 5);
      let inside =
        Ir_exec.with_default_jobs (Some 2) (fun () ->
            Ir_exec.default_jobs ())
      in
      Alcotest.(check int) "scoped override visible" 2 inside;
      Alcotest.(check int) "outer override restored" 5
        (Ir_exec.default_jobs ());
      (* restores on exceptions too *)
      (try
         Ir_exec.with_default_jobs (Some 3) (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check int) "restored after raise" 5 (Ir_exec.default_jobs ()))

let test_recommended_positive () =
  Alcotest.(check bool) "at least one worker" true
    (Ir_exec.recommended_jobs () >= 1)

let test_pool_stats_accounting () =
  let n = 57 in
  let xs = Array.init n (fun i -> i) in
  ignore (Ir_exec.parallel_map ~jobs:4 (fun x -> 2 * x) xs);
  (match Ir_exec.last_pool_stats () with
  | None -> Alcotest.fail "no stats after a parallel run"
  | Some st ->
      Alcotest.(check int) "jobs recorded" 4 st.Ir_exec.jobs;
      Alcotest.(check int) "one units slot per worker" 4
        (Array.length st.Ir_exec.units);
      Alcotest.(check int) "one busy slot per worker" 4
        (Array.length st.Ir_exec.busy_seconds);
      Alcotest.(check int) "per-worker units sum to n" n
        (Array.fold_left ( + ) 0 st.Ir_exec.units);
      Array.iter
        (fun u ->
          Alcotest.(check bool) "units non-negative" true (u >= 0))
        st.Ir_exec.units;
      Alcotest.(check bool) "wall time non-negative" true
        (st.Ir_exec.wall_seconds >= 0.0);
      let p = Ir_exec.effective_parallelism st in
      Alcotest.(check bool) "effective parallelism sane" true
        (p >= 0.0 && p <= float_of_int st.Ir_exec.jobs +. 1.0));
  (* The jobs = 1 path must produce the degenerate single-worker record
     so callers can report uniformly. *)
  ignore (Ir_exec.parallel_map ~jobs:1 (fun x -> x) xs);
  match Ir_exec.last_pool_stats () with
  | None -> Alcotest.fail "no stats after a sequential run"
  | Some st ->
      Alcotest.(check int) "seq jobs" 1 st.Ir_exec.jobs;
      check_int_array "seq units" [| n |] st.Ir_exec.units

(* ---- work-stealing scheduler invariants ------------------------------ *)

(* Differential oracle for the weighted scheduler: whatever the weights,
   worker count and steal schedule, [parallel_group_map] must return the
   plain sequential map, and the deterministic counters (everything
   outside exec/sched/) must be byte-identical between the jobs=1 and
   jobs=4 legs.  Weights are skewed on purpose: a 0 draw becomes a giant
   group, the shape that forces thieves onto other queues. *)
let group_counters jobs weights =
  Ir_obs.reset ();
  let work = Ir_obs.counter "test/group_work" in
  let out =
    Ir_exec.parallel_group_map ~jobs
      ~weight:(fun (_, w) -> w)
      (fun (i, w) ->
        Ir_obs.add work ((i * 7) + w);
        (i * 31) + w)
      (Array.of_list (List.mapi (fun i w -> (i, w)) weights))
  in
  let counters =
    (Ir_obs.filter_out ~prefix:"exec/sched/" (Ir_obs.snapshot ()))
      .Ir_obs.counters
  in
  (out, counters)

let prop_group_map_differential =
  Helpers.qtest ~count:60 "group map: stealing == sequential"
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (map (fun w -> if w = 0 then 512 else w) (int_range 0 20)))
    (fun weights ->
      let seq_out, seq_counters = group_counters 1 weights in
      let par_out, par_counters = group_counters 4 weights in
      seq_out = par_out && seq_counters = par_counters)

let test_group_map_one_giant () =
  (* Frozen adversarial instance: one group outweighs the rest of the
     workload combined, so every other worker drains its own queue and
     must steal to stay busy — the exact shape that regressed before the
     work-stealing scheduler. *)
  let weights =
    Array.to_list (Array.init 33 (fun i -> if i = 0 then 512 else 1))
  in
  let seq_out, seq_counters = group_counters 1 weights in
  let par_out, par_counters = group_counters 4 weights in
  Alcotest.(check (array int)) "one-giant results identical" seq_out par_out;
  Alcotest.(check (list (pair string int)))
    "one-giant counters identical" seq_counters par_counters

let test_steals_accounted () =
  ignore
    (Ir_exec.parallel_map ~jobs:4 (fun x -> x) (Array.init 32 Fun.id));
  (match Ir_exec.last_pool_stats () with
  | None -> Alcotest.fail "no stats"
  | Some st ->
      Alcotest.(check int) "one steals slot per worker" 4
        (Array.length st.Ir_exec.steals);
      Array.iter
        (fun s -> Alcotest.(check bool) "steals non-negative" true (s >= 0))
        st.Ir_exec.steals);
  ignore (Ir_exec.parallel_map ~jobs:1 (fun x -> x) (Array.init 3 Fun.id));
  match Ir_exec.last_pool_stats () with
  | None -> Alcotest.fail "no stats"
  | Some st ->
      check_int_array "sequential run steals nothing" [| 0 |]
        st.Ir_exec.steals

let test_clamp_counter () =
  (* With oversubscription off, an over-hardware request must bump the
     exec/sched/jobs_clamped counter (satellite of the scheduler PR: the
     clamp used to be completely silent). *)
  Ir_exec.set_allow_oversubscribe false;
  Fun.protect ~finally:(fun () -> Ir_exec.set_allow_oversubscribe true)
  @@ fun () ->
  let clamped = Ir_obs.counter "exec/sched/jobs_clamped" in
  let before = Ir_obs.value clamped in
  let jobs = Ir_exec.hardware_jobs () + 3 in
  ignore (Ir_exec.parallel_map ~jobs (fun x -> x) (Array.init 16 Fun.id));
  Alcotest.(check int) "clamp counted" (before + 1) (Ir_obs.value clamped);
  (* An in-range request does not count as a clamp. *)
  ignore (Ir_exec.parallel_map ~jobs:1 (fun x -> x) (Array.init 4 Fun.id));
  Alcotest.(check int) "no spurious count" (before + 1)
    (Ir_obs.value clamped)

let test_pool_heap_restore () =
  (* The 4M-word pool minor heap is scoped: once the outermost scope
     drains, the pre-pool size must be back (satellite of the scheduler
     PR — previously a one-way ratchet). *)
  let before = (Gc.get ()).Gc.minor_heap_size in
  let inside =
    Ir_exec.with_pool_heap @@ fun () ->
    ignore
      (Ir_exec.parallel_map ~jobs:4 (fun x -> x * 2) (Array.init 32 Fun.id));
    (Gc.get ()).Gc.minor_heap_size
  in
  Alcotest.(check int) "raised (or already larger) inside the scope"
    (max before Ir_exec.pool_minor_heap_words)
    inside;
  Alcotest.(check int) "restored after the scope drains" before
    ((Gc.get ()).Gc.minor_heap_size);
  (* Restores on the exception path too. *)
  (try Ir_exec.with_pool_heap (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "restored after a raise" before
    ((Gc.get ()).Gc.minor_heap_size)

(* The unit split across workers is scheduling-dependent, but the sum is
   an invariant: every element is processed exactly once. *)
let prop_units_sum_to_n =
  Helpers.qtest ~count:50 "pool units sum to n"
    QCheck2.Gen.(pair (int_range 0 40) (int_range 1 6))
    (fun (n, jobs) ->
      ignore
        (Ir_exec.parallel_map ~jobs
           (fun x -> x + 1)
           (Array.init n (fun i -> i)));
      match Ir_exec.last_pool_stats () with
      | None -> false
      | Some st -> Array.fold_left ( + ) 0 st.Ir_exec.units = n)

(* The incumbent cell's two-sided protocol: offers accumulate (max) on
   the pending side from any domain, and only [publish] — called at
   sequential barriers — moves them into [current].  Concurrent offers
   commute, which is what makes the pruning counters jobs-invariant. *)
let test_incumbent_protocol () =
  let c = Ir_exec.Incumbent.create () in
  Alcotest.(check int) "fresh current" (-1) (Ir_exec.Incumbent.current c);
  Ir_exec.Incumbent.offer c 5;
  Ir_exec.Incumbent.offer c 3;
  Alcotest.(check int) "offers invisible until publish" (-1)
    (Ir_exec.Incumbent.current c);
  Alcotest.(check int) "pending is the max offer" 5
    (Ir_exec.Incumbent.best_offer c);
  Alcotest.(check bool) "publish raises" true (Ir_exec.Incumbent.publish c);
  Alcotest.(check int) "published" 5 (Ir_exec.Incumbent.current c);
  Alcotest.(check bool) "idle publish is a no-op" false
    (Ir_exec.Incumbent.publish c);
  Ir_exec.Incumbent.offer c 4;
  Alcotest.(check bool) "lower offer never regresses" false
    (Ir_exec.Incumbent.publish c);
  Alcotest.(check int) "still 5" 5 (Ir_exec.Incumbent.current c);
  let f = Ir_exec.Incumbent.create ~floor:7 () in
  Alcotest.(check int) "floor seeds current" 7 (Ir_exec.Incumbent.current f)

let test_incumbent_concurrent_offers () =
  (* Offers race from every domain; the published value is the max no
     matter the interleaving. *)
  let c = Ir_exec.Incumbent.create () in
  ignore
    (Ir_exec.parallel_map ~jobs:4
       (fun x ->
         Ir_exec.Incumbent.offer c x;
         x)
       (Array.init 64 (fun i -> (i * 37) mod 64)));
  ignore (Ir_exec.Incumbent.publish c);
  Alcotest.(check int) "max of all offers" 63 (Ir_exec.Incumbent.current c)

let () =
  Alcotest.run "exec"
    [
      ( "parallel_map",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_matches_sequential;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "jobs exceed items" `Quick
            test_jobs_exceed_items;
          Alcotest.test_case "jobs=1 stays on caller" `Quick
            test_singleton_sequential;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
        ] );
      ( "incumbent",
        [
          Alcotest.test_case "offer/publish protocol" `Quick
            test_incumbent_protocol;
          Alcotest.test_case "concurrent offers" `Quick
            test_incumbent_concurrent_offers;
        ] );
      ( "parallel_map_chunked",
        [ Alcotest.test_case "chunk sizes" `Quick test_chunked_equivalence ] );
      ( "parallel_list_map",
        [ Alcotest.test_case "order" `Quick test_list_map_order ] );
      ( "configuration",
        [
          Alcotest.test_case "jobs resolution" `Quick test_jobs_resolution;
          Alcotest.test_case "scoped override" `Quick test_with_default_jobs;
          Alcotest.test_case "recommended positive" `Quick
            test_recommended_positive;
          Alcotest.test_case "hardware clamp" `Quick test_hardware_clamp;
        ] );
      ( "pool_stats",
        [
          Alcotest.test_case "accounting" `Quick test_pool_stats_accounting;
          Alcotest.test_case "steal accounting" `Quick test_steals_accounted;
          prop_units_sum_to_n;
        ] );
      ( "work stealing",
        [
          Alcotest.test_case "one giant group" `Quick test_group_map_one_giant;
          prop_group_map_differential;
        ] );
      ( "gc scoping",
        [
          Alcotest.test_case "clamp counter" `Quick test_clamp_counter;
          Alcotest.test_case "pool heap restored" `Quick
            test_pool_heap_restore;
        ] );
    ]
