(* Tests for the rank algorithms: optimal DP vs exhaustive oracle, greedy
   baseline dominance, monotonicity laws, and the paper-literal DP. *)

open Helpers

module P = Ir_assign.Problem

let test_outcome () =
  let o =
    Ir_core.Outcome.v ~rank_wires:40 ~total_wires:100 ~assignable:true
      ~boundary_bunch:4 ()
  in
  check_close "normalized" 0.4 (Ir_core.Outcome.normalized o);
  Alcotest.check_raises "rank above total"
    (Invalid_argument "Outcome.v: rank exceeds total") (fun () ->
      ignore
        (Ir_core.Outcome.v ~rank_wires:5 ~total_wires:4 ~assignable:true
           ~boundary_bunch:0 ()));
  Alcotest.check_raises "positive rank needs assignability"
    (Invalid_argument "Outcome.v: positive rank requires assignability")
    (fun () ->
      ignore
        (Ir_core.Outcome.v ~rank_wires:1 ~total_wires:4 ~assignable:false
           ~boundary_bunch:0 ()));
  let u = Ir_core.Outcome.unassignable ~total_wires:7 () in
  Alcotest.(check int) "unassignable rank 0" 0 u.rank_wires;
  let s = Format.asprintf "%a" Ir_core.Outcome.pp_human u in
  Alcotest.(check bool) "pp mentions unassignable" true
    (Astring_contains.contains s "unassignable")

(* A hand-checkable instance: roomy die, loose targets; everything meets. *)
let test_dp_all_meet () =
  let design =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:100_000 ~clock:1e8 ()
  in
  let arch = Ir_ia.Arch.make ~design () in
  let bunches =
    Array.init 5 (fun i ->
        { Ir_wld.Dist.length = 1e-4 /. float_of_int (i + 1); count = 2 })
  in
  let p = P.of_bunches ~arch ~bunches () in
  let o = Ir_core.Rank_dp.compute p in
  Alcotest.(check int) "all 10 wires meet" 10 o.rank_wires;
  Alcotest.(check bool) "assignable" true o.assignable

let test_dp_zero_budget () =
  (* With zero repeater budget and tight targets, only wires meeting
     unbuffered... which under Eq. (3)'s eta >= 1 never happens with zero
     area.  Rank must be 0 but the instance remains assignable. *)
  let design =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:100_000 ~clock:5e8
      ~repeater_fraction:0.0 ()
  in
  let arch = Ir_ia.Arch.make ~design () in
  let bunches = [| { Ir_wld.Dist.length = 3e-3; count = 4 } |] in
  let p = P.of_bunches ~arch ~bunches () in
  let o = Ir_core.Rank_dp.compute p in
  Alcotest.(check bool) "assignable" true o.assignable;
  Alcotest.(check int) "rank 0 without budget" 0 o.rank_wires

let test_dp_unassignable () =
  let design = Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:100 () in
  let arch = Ir_ia.Arch.make ~design () in
  let bunches = [| { Ir_wld.Dist.length = 1e-2; count = 1000 } |] in
  let p = P.of_bunches ~arch ~bunches () in
  let o = Ir_core.Rank_dp.compute p in
  Alcotest.(check bool) "not assignable" false o.assignable;
  Alcotest.(check int) "rank 0 (Definition 3)" 0 o.rank_wires

let test_dp_binary_vs_exhaustive () =
  (* The binary search relies on boundary monotonicity; the exhaustive
     scan cross-checks it on the scaled-down baseline. *)
  let p = baseline_130nm_small () in
  let fast = Ir_core.Rank_dp.compute p in
  let slow = Ir_core.Rank_dp.compute ~exhaustive:true p in
  Alcotest.(check int) "same rank" fast.rank_wires slow.rank_wires

let test_greedy_baseline_sane () =
  let p = baseline_130nm_small () in
  let g = Ir_core.Rank_greedy.compute p in
  let d = Ir_core.Rank_dp.compute p in
  Alcotest.(check bool) "greedy assignable" true g.assignable;
  Alcotest.(check bool) "greedy <= dp" true (g.rank_wires <= d.rank_wires);
  Alcotest.(check bool) "dp positive on baseline" true (d.rank_wires > 0)

let test_figure2 () =
  let s = Ir_sweep.Figure2.scenario () in
  Alcotest.(check int) "greedy rank 2" 2 s.greedy.rank_wires;
  Alcotest.(check int) "optimal rank 4" 4 s.optimal.rank_wires;
  Alcotest.(check int) "literal DP agrees" 4 s.exact.rank_wires

let test_exact_dp_smoke () =
  (* The literal DP on a small roomy instance finds everything meets. *)
  let design =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:100_000 ~clock:1e8 ()
  in
  let arch = Ir_ia.Arch.make ~design () in
  let bunches =
    Array.init 4 (fun i ->
        { Ir_wld.Dist.length = 1e-4 /. float_of_int (i + 1); count = 1 })
  in
  let p = P.of_bunches ~arch ~bunches () in
  let o = Ir_core.Rank_exact.compute ~r_steps:8 p in
  Alcotest.(check int) "all meet" 4 o.rank_wires

let test_exact_dp_guard () =
  let p = baseline_130nm_small () in
  Alcotest.check_raises "too large"
    (Invalid_argument "Rank_exact.compute: instance too large for the literal DP")
    (fun () -> ignore (Ir_core.Rank_exact.compute p))

let test_threshold_baseline () =
  let p = baseline_130nm_small () in
  let t = Ir_core.Rank_threshold.compute p in
  let dp = Ir_core.Rank_dp.compute p in
  Alcotest.(check bool) "threshold <= dp" true
    (t.rank_wires <= dp.rank_wires);
  (* Characteristic lengths exist and are positive for every pair. *)
  for j = 0 to Ir_assign.Problem.n_pairs p - 1 do
    Alcotest.(check bool) "lambda positive" true
      (Ir_core.Rank_threshold.characteristic_length p j > 0.0)
  done;
  Alcotest.check_raises "bad beta"
    (Invalid_argument "Rank_threshold.compute: beta must be > 0") (fun () ->
      ignore (Ir_core.Rank_threshold.compute ~beta:0.0 p))

let prop_threshold_le_dp =
  qtest ~count:80 "threshold assignment never beats the DP"
    Helpers.gen_instance (fun { problem; label } ->
      let dp = Ir_core.Rank_dp.compute problem in
      let t = Ir_core.Rank_threshold.compute problem in
      if t.rank_wires > dp.rank_wires then
        QCheck2.Test.fail_reportf "%s: threshold=%d dp=%d" label t.rank_wires
          dp.rank_wires
      else true)

let test_noise_limited_rank () =
  (* A noise limit can only lower the rank; shielded wiring (miller 1)
     restores it because the victim is quiet. *)
  let design = Ir_core.Rank.baseline_design ~gates:40_000 Ir_tech.Node.N130 in
  let arch = Ir_ia.Arch.make ~design () in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:40_000 ())
  in
  let rank ?noise_limit ?materials () =
    let arch = match materials with
      | None -> arch
      | Some m -> Ir_ia.Arch.with_materials arch m
    in
    let p = Ir_assign.Problem.make ?noise_limit ~bunch_size:500 ~arch ~wld () in
    (Ir_core.Rank_dp.compute p).Ir_core.Outcome.rank_wires
  in
  let free = rank () in
  let tight = rank ~noise_limit:0.2 () in
  Alcotest.(check bool) "noise limit can only hurt" true (tight <= free);
  let shielded =
    rank ~noise_limit:0.2
      ~materials:(Ir_ia.Materials.v ~miller:1.0 ()) ()
  in
  Alcotest.(check bool) "shielding restores rank under noise limits" true
    (shielded > 0)

let test_assignment_witness () =
  let p = baseline_130nm_small () in
  let a = Ir_core.Assignment.extract p in
  (match Ir_core.Assignment.check p a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "witness invalid: %s" e);
  Alcotest.(check int) "witness rank equals DP rank"
    (Ir_core.Rank_dp.compute p).rank_wires a.outcome.rank_wires;
  let util = Ir_core.Assignment.utilization p a in
  Alcotest.(check int) "one utilization entry per pair"
    (Ir_assign.Problem.n_pairs p) (List.length util);
  List.iter
    (fun (j, u) ->
      if u < 0.0 || u > 1.0 +. 1e-9 then
        Alcotest.failf "pair %d utilization %.3f out of range" j u)
    util;
  let rendered = Format.asprintf "%a" (Ir_core.Assignment.pp_human p) a in
  Alcotest.(check bool) "render mentions overflow" true
    (Astring_contains.contains rendered "overflow")

let prop_witness_checks =
  qtest ~count:100 "extracted witnesses validate independently"
    Helpers.gen_instance (fun { problem; label } ->
      let a = Ir_core.Assignment.extract problem in
      match Ir_core.Assignment.check problem a with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_reportf "%s: %s" label e)

let test_rank_facade () =
  let design = Ir_core.Rank.baseline_design ~gates:40_000 Ir_tech.Node.N130 in
  let o = Ir_core.Rank.of_design ~bunch_size:500 design in
  Alcotest.(check bool) "positive rank" true (o.rank_wires > 0);
  let o_greedy =
    Ir_core.Rank.of_design ~algo:Ir_core.Rank.Greedy ~bunch_size:500 design
  in
  Alcotest.(check bool) "greedy <= dp via facade" true
    (o_greedy.rank_wires <= o.rank_wires)

(* ---- properties ------------------------------------------------------- *)

let prop_dp_equals_brute =
  qtest ~count:150 "optimized DP matches the exhaustive oracle"
    Helpers.gen_instance (fun { problem; label } ->
      let dp = Ir_core.Rank_dp.compute problem in
      let brute = Ir_core.Rank_brute.compute problem in
      if dp.rank_wires <> brute.rank_wires
         || dp.assignable <> brute.assignable then
        QCheck2.Test.fail_reportf "%s: dp=%d/%b brute=%d/%b" label
          dp.rank_wires dp.assignable brute.rank_wires brute.assignable
      else true)

let prop_greedy_le_dp =
  qtest ~count:150 "greedy never beats the DP" Helpers.gen_instance
    (fun { problem; label } ->
      let dp = Ir_core.Rank_dp.compute problem in
      let g = Ir_core.Rank_greedy.compute problem in
      if g.rank_wires > dp.rank_wires then
        QCheck2.Test.fail_reportf "%s: greedy=%d dp=%d" label g.rank_wires
          dp.rank_wires
      else true)

let prop_exact_le_dp =
  qtest ~count:60 "literal DP never exceeds the optimal DP"
    Helpers.gen_instance (fun { problem; label } ->
      let dp = Ir_core.Rank_dp.compute problem in
      let ex = Ir_core.Rank_exact.compute ~r_steps:12 problem in
      if ex.rank_wires > dp.rank_wires then
        QCheck2.Test.fail_reportf "%s: exact=%d dp=%d" label ex.rank_wires
          dp.rank_wires
      else true)

let prop_rank_monotone_in_budget =
  qtest ~count:60 "more repeater budget never lowers the rank"
    Helpers.gen_instance (fun { problem; label } ->
      let arch = P.arch problem in
      let design = arch.Ir_ia.Arch.design in
      let fr = design.Ir_tech.Design.repeater_fraction in
      if fr > 0.85 then true
      else begin
        let richer =
          Ir_ia.Arch.with_design arch
            (Ir_tech.Design.with_repeater_fraction design (fr +. 0.1))
        in
        let bunches =
          Array.init (P.n_bunches problem) (fun b ->
              { Ir_wld.Dist.length = P.bunch_length problem b;
                count = P.bunch_count problem b })
        in
        let p2 = P.of_bunches ~arch:richer ~bunches () in
        let r1 = (Ir_core.Rank_dp.compute problem).rank_wires in
        let r2 = (Ir_core.Rank_dp.compute p2).rank_wires in
        if r2 < r1 then
          QCheck2.Test.fail_reportf "%s: budget up, rank %d -> %d" label r1 r2
        else true
      end)

let prop_rank_monotone_in_k =
  qtest ~count:60 "lower permittivity never lowers the rank"
    Helpers.gen_instance (fun { problem; label } ->
      let arch = P.arch problem in
      let low_k =
        Ir_ia.Arch.with_materials arch (Ir_ia.Materials.v ~k:2.0 ())
      in
      let bunches =
        Array.init (P.n_bunches problem) (fun b ->
            { Ir_wld.Dist.length = P.bunch_length problem b;
              count = P.bunch_count problem b })
      in
      let p2 = P.of_bunches ~arch:low_k ~bunches () in
      let r1 = (Ir_core.Rank_dp.compute problem).rank_wires in
      let r2 = (Ir_core.Rank_dp.compute p2).rank_wires in
      if r2 < r1 then
        QCheck2.Test.fail_reportf "%s: k down, rank %d -> %d" label r1 r2
      else true)

let prop_binary_matches_exhaustive =
  (* The issue's satellite check: the binary boundary search rests on the
     monotonicity argument documented in Rank_dp; the exhaustive scan is
     its oracle on random instances (which include the inverted-stack
     regimes the baseline never shows). *)
  qtest ~count:120 "binary boundary search matches the exhaustive scan"
    Helpers.gen_instance (fun { problem; label } ->
      let fast = Ir_core.Rank_dp.compute problem in
      let slow = Ir_core.Rank_dp.compute ~exhaustive:true problem in
      if
        fast.rank_wires <> slow.rank_wires
        || fast.assignable <> slow.assignable
      then
        QCheck2.Test.fail_reportf "%s: binary=%d/%b exhaustive=%d/%b" label
          fast.rank_wires fast.assignable slow.rank_wires slow.assignable
      else true)

let test_tables_reuse () =
  (* search_tables over prebuilt tables must equal the one-shot search,
     and the tables survive repeated queries (they are immutable). *)
  let p = baseline_130nm_small () in
  let tables = Ir_core.Rank_dp.build_tables p in
  let via_tables = fst (Ir_core.Rank_dp.search_tables tables) in
  let direct = Ir_core.Rank_dp.compute p in
  Alcotest.(check int) "same rank" direct.rank_wires via_tables.rank_wires;
  let again = fst (Ir_core.Rank_dp.search_tables ~exhaustive:true tables) in
  Alcotest.(check int) "repeat query stable" direct.rank_wires
    again.rank_wires

(* ---- Pareto overflow / exactness ------------------------------------- *)

(* Adversarial instances found by randomized search over the same space as
   Helpers.gen_instance (plus multi-wire bunches): the geometry, clock and
   length literals below are the exact doubles the search reported, frozen
   so the tests stay deterministic.  [adversarial_problem] rebuilds the
   instance the way the generator does: lengths sorted descending, then
   zipped with the per-bunch counts. *)
let adversarial_problem ~local ~semi ~global ~gates ~clock ~fraction ~counts
    ~lengths_mm =
  let geometry (width, spacing, thickness, via_width) =
    Ir_tech.Geometry.v ~width ~spacing ~thickness ~via_width ()
  in
  let stack =
    {
      Ir_tech.Stack.node =
        Ir_tech.Node.Custom { name = "adversarial"; feature = 130e-9 };
      local = geometry local;
      semi_global = geometry semi;
      global = geometry global;
      mx_layers = 5;
      mt_layers = 1;
    }
  in
  let design =
    Ir_tech.Design.v
      ~node:(Ir_tech.Node.Custom { name = "adversarial"; feature = 130e-9 })
      ~gates ~clock ~repeater_fraction:fraction ()
  in
  let structure =
    { Ir_ia.Arch.local_pairs = 1; semi_global_pairs = 1; global_pairs = 1 }
  in
  let arch = Ir_ia.Arch.make ~structure ~stack ~design () in
  let sorted = List.sort (fun a b -> Float.compare b a) lengths_mm in
  let bunches =
    Array.of_list
      (List.map2
         (fun l c -> { Ir_wld.Dist.length = Ir_phys.Units.mm l; count = c })
         sorted counts)
  in
  P.of_bunches ~arch ~bunches ()

(* Its phase-A Pareto front exceeds the default width 8. *)
let overflowing_problem () =
  adversarial_problem
    ~local:
      ( 5.3095550389360423e-07, 3.0831268735062441e-07,
        7.1844591095434606e-07, 1.0005558635294242e-07 )
    ~semi:
      ( 1.598659805087945e-07, 1.3802776320216007e-07,
        2.1555315676358843e-07, 1.0241727322044422e-07 )
    ~global:
      ( 5.4754699139350477e-07, 2.6784899853456654e-07,
        1.0539778775924268e-06, 1.7812977071127073e-07 )
    ~gates:2432 ~clock:3.9872599080504165e9 ~fraction:0.74686733954949214
    ~counts:[ 1; 2; 2; 1; 1; 2; 2; 1; 1; 1; 2 ]
    ~lengths_mm:
      [ 3.6520963231125698; 0.98958431651449208; 3.9076515829026501;
        1.6763933135456763; 2.5346613973237861; 2.9093155040911229;
        0.81223700481588268; 0.95906533186011544; 2.8563330453106883;
        0.3352962962129703; 3.0536133535762913 ]

(* A width-1 front already loses the state behind the true optimum. *)
let rank_changing_problem () =
  adversarial_problem
    ~local:
      ( 5.3007315779987603e-07, 5.8166095207083609e-07,
        8.8424995898149244e-07, 2.5527989868773304e-07 )
    ~semi:
      ( 2.3596112983832349e-07, 5.1950525291214761e-07,
        1.0498093669450101e-06, 3.0977913655409793e-07 )
    ~global:
      ( 1.7463812613679033e-07, 2.7922280425742262e-07,
        2.0443424792061323e-07, 2.5232221581787872e-07 )
    ~gates:1088 ~clock:3.9995243316415632e9 ~fraction:0.012119371512830416
    ~counts:[ 2; 1; 2; 1; 1; 2; 2; 2; 2; 2; 1; 1 ]
    ~lengths_mm:
      [ 3.3418262525457809; 2.8134743144834737; 3.1462396277935394;
        3.3033780217361279; 0.077756138535907043; 1.769624564453558;
        1.0026169337562272; 1.6336512198251629; 1.9652216164557261;
        1.0192798875341027; 2.5463811372616458; 0.43069454568339277 ]

let test_pareto_overflow_widens () =
  let p = overflowing_problem () in
  let tables = Ir_core.Rank_dp.build_tables ~max_pareto:8 p in
  Alcotest.(check bool) "front exceeds default width 8" true
    (Ir_core.Rank_dp.table_truncations tables > 0);
  let narrow =
    Ir_core.Rank_dp.compute ~max_pareto:8 ~widen_on_overflow:false p
  in
  Alcotest.(check bool) "unwidened result flagged inexact" false narrow.exact;
  let widen_retries_before =
    Option.value ~default:0
      (Ir_obs.find_counter (Ir_obs.snapshot ()) "rank_dp/widen_retries")
  in
  let wide = Ir_core.Rank_dp.compute ~max_pareto:8 p in
  let widen_retries_after =
    Option.value ~default:0
      (Ir_obs.find_counter (Ir_obs.snapshot ()) "rank_dp/widen_retries")
  in
  Alcotest.(check bool) "default search widened" true
    (widen_retries_after > widen_retries_before);
  Alcotest.(check bool) "widened result exact" true wide.exact;
  let brute = Ir_core.Rank_brute.compute p in
  Alcotest.(check int) "widened rank matches the exhaustive oracle"
    brute.rank_wires wide.rank_wires;
  Alcotest.(check bool) "lower bound stays a lower bound" true
    (narrow.rank_wires <= wide.rank_wires)

let test_pareto_truncation_changes_rank () =
  let p = rank_changing_problem () in
  let brute = Ir_core.Rank_brute.compute p in
  (* The pre-fix behaviour: truncate silently and report the resulting
     lower bound as if it were the rank. *)
  let narrow =
    Ir_core.Rank_dp.compute ~max_pareto:1 ~widen_on_overflow:false p
  in
  Alcotest.(check bool) "truncation changes the reported rank" true
    (narrow.rank_wires < brute.rank_wires);
  Alcotest.(check bool) "and is flagged inexact" false narrow.exact;
  let marker = Format.asprintf "%a" Ir_core.Outcome.pp_human narrow in
  Alcotest.(check bool) "pp flags the lower bound" true
    (Astring_contains.contains marker "pareto-truncated");
  (* The fixed default: widening from the same starting width recovers
     the brute-force rank.  The convergence-gated ladder may stop before
     it can prove exactness, but it must never over-claim: if the flag
     says exact, the value must be the oracle's. *)
  let widened = Ir_core.Rank_dp.compute ~max_pareto:1 p in
  Alcotest.(check int) "widening recovers the exact rank" brute.rank_wires
    widened.rank_wires;
  Alcotest.(check bool) "flag never over-claims" true
    ((not widened.exact) || widened.rank_wires = brute.rank_wires);
  (* At the default width the instance does not truncate at all, so the
     default configuration reports it exact. *)
  let dflt = Ir_core.Rank_dp.compute p in
  Alcotest.(check int) "default width is exact here" brute.rank_wires
    dflt.rank_wires;
  Alcotest.(check bool) "and says so" true dflt.exact

(* ---- flat front vs the list-based reference --------------------------- *)

module Front = Ir_core.Front

(* The list-based Pareto insert the flat kernel replaced, kept verbatim
   (modulo field names) as the reference semantics the differential
   properties below compare against: surviving states, their
   ascending-area order, the dominated / truncation tallies, and the
   splits history must all be identical. *)
type relt = { r_area : float; r_count : int; r_splits : int list }

type rstats = {
  mutable r_inserts : int;
  mutable r_dominated : int;
  mutable r_truncations : int;
}

let rdominates a b = a.r_area <= b.r_area && a.r_count <= b.r_count

let rinsert ~width ~stats set e =
  stats.r_inserts <- stats.r_inserts + 1;
  if List.exists (fun x -> rdominates x e) set then begin
    stats.r_dominated <- stats.r_dominated + 1;
    set
  end
  else
    let survivors = List.filter (fun x -> not (rdominates e x)) set in
    let merged =
      List.sort (fun a b -> Float.compare a.r_area b.r_area) (e :: survivors)
    in
    let len = List.length merged in
    if len <= width then merged
    else begin
      stats.r_truncations <- stats.r_truncations + (len - width);
      let arr = Array.of_list merged in
      Array.to_list (Array.sub arr 0 (width - 1)) @ [ arr.(len - 1) ]
    end

(* One front cell checked element-by-element against its reference list;
   [r_splits] is most-recent-first, {!Front.splits} returns top-down. *)
let check_cell_equal ~label front cell reference =
  let len = Front.length front cell in
  if len <> List.length reference then
    QCheck2.Test.fail_reportf "%s: cell %d length front=%d ref=%d" label cell
      len (List.length reference);
  List.iteri
    (fun k r ->
      let a = Front.area front cell k and c = Front.count front cell k in
      if a <> r.r_area || c <> r.r_count then
        QCheck2.Test.fail_reportf
          "%s: cell %d elt %d front=(%.17g,%d) ref=(%.17g,%d)" label cell k a
          c r.r_area r.r_count;
      let splits = Front.splits front (Front.state front cell k) in
      if splits <> List.rev r.r_splits then
        QCheck2.Test.fail_reportf "%s: cell %d elt %d splits differ" label
          cell k)
    reference;
  true

let check_stats_equal ~label front stats =
  if
    Front.inserts front <> stats.r_inserts
    || Front.dominated front <> stats.r_dominated
    || Front.truncations front <> stats.r_truncations
  then
    QCheck2.Test.fail_reportf
      "%s: stats front=(%d,%d,%d) ref=(%d,%d,%d)" label
      (Front.inserts front) (Front.dominated front)
      (Front.truncations front) stats.r_inserts stats.r_dominated
      stats.r_truncations
  else true

(* Random insert sequences with deliberately tiny area/count alphabets so
   exact ties (equal area, equal count, both directions of dominance) are
   common.  Checked after every insert, not only at the end. *)
let gen_insert_seq =
  let open QCheck2.Gen in
  let* width = int_range 1 8 in
  let* ops =
    list_size (int_range 1 60)
      (pair (map float_of_int (int_range 0 9)) (int_range 0 9))
  in
  return (width, ops)

let prop_front_insert_matches_reference =
  qtest ~count:500 "flat front insert matches the list reference"
    gen_insert_seq (fun (width, ops) ->
      let label = Printf.sprintf "width=%d n_ops=%d" width (List.length ops) in
      let stats = { r_inserts = 0; r_dominated = 0; r_truncations = 0 } in
      let front = Front.create ~cells:1 ~width in
      let reference = ref [] in
      List.iteri
        (fun k (area, count) ->
          reference :=
            rinsert ~width ~stats !reference
              { r_area = area; r_count = count; r_splits = [ k ] };
          Front.insert front 0 ~area ~count ~split:k ~parent:(-1);
          ignore (check_cell_equal ~label front 0 !reference))
        ops;
      check_stats_equal ~label front stats)

(* [Front.recycle] must be indistinguishable from [create]: pre-dirty a
   donor front with its own insert sequence (under a different geometry,
   so both the reuse path and the too-small fallback are exercised),
   recycle it into the test geometry, and replay one insert sequence
   into both the recycled front and a fresh one — every element, every
   splits chain and all four tallies must agree. *)
let gen_recycle_seq =
  let open QCheck2.Gen in
  let* width, ops = gen_insert_seq in
  let* donor_width = int_range 1 10 in
  let* donor_ops =
    list_size (int_range 0 30)
      (pair (map float_of_int (int_range 0 9)) (int_range 0 9))
  in
  return (width, ops, donor_width, donor_ops)

let prop_front_recycle_matches_create =
  qtest ~count:300 "recycled front matches a fresh create" gen_recycle_seq
    (fun (width, ops, donor_width, donor_ops) ->
      let label =
        Printf.sprintf "width=%d donor_width=%d n_donor=%d" width donor_width
          (List.length donor_ops)
      in
      let donor = Front.create ~cells:2 ~width:donor_width in
      List.iteri
        (fun k (area, count) ->
          Front.insert donor (k mod 2) ~area ~count ~split:k ~parent:(-1))
        donor_ops;
      let recycled = Front.recycle donor ~cells:1 ~width in
      let fresh = Front.create ~cells:1 ~width in
      List.iteri
        (fun k (area, count) ->
          Front.insert fresh 0 ~area ~count ~split:k ~parent:(-1);
          Front.insert recycled 0 ~area ~count ~split:k ~parent:(-1))
        ops;
      let len_f = Front.length fresh 0 in
      if len_f <> Front.length recycled 0 then
        QCheck2.Test.fail_reportf "%s: lengths differ" label
      else begin
        for k = 0 to len_f - 1 do
          if
            Front.area fresh 0 k <> Front.area recycled 0 k
            || Front.count fresh 0 k <> Front.count recycled 0 k
            || Front.splits fresh (Front.state fresh 0 k)
               <> Front.splits recycled (Front.state recycled 0 k)
          then QCheck2.Test.fail_reportf "%s: element %d differs" label k
        done;
        if
          Front.inserts fresh <> Front.inserts recycled
          || Front.dominated fresh <> Front.dominated recycled
          || Front.truncations fresh <> Front.truncations recycled
          || Front.arena_states fresh <> Front.arena_states recycled
        then QCheck2.Test.fail_reportf "%s: statistics differ" label
        else true
      end)

(* ---- powered (3-way) stores ------------------------------------------- *)

(* Reference semantics of [insert_pw], mirrored from its documented
   contract: 3-way dominance, survivors keep area-ascending order, the
   candidate lands after every equal-or-smaller area, and width overflow
   drops the largest-area element (one truncation). *)
type pelt = { p_area : float; p_count : int; p_power : float }

let pdominates a b =
  a.p_area <= b.p_area && a.p_count <= b.p_count && a.p_power <= b.p_power

let pinsert ~width ~stats set e =
  stats.r_inserts <- stats.r_inserts + 1;
  if List.exists (fun x -> pdominates x e) set then begin
    stats.r_dominated <- stats.r_dominated + 1;
    set
  end
  else begin
    let survivors = List.filter (fun x -> not (pdominates e x)) set in
    let rec land_after = function
      | x :: rest when x.p_area <= e.p_area -> x :: land_after rest
      | rest -> e :: rest
    in
    let merged = land_after survivors in
    if List.length merged > width then begin
      stats.r_truncations <- stats.r_truncations + 1;
      List.filteri (fun k _ -> k < width) merged
    end
    else merged
  end

let gen_pw_insert_seq =
  let open QCheck2.Gen in
  let* width = int_range 1 8 in
  let* ops =
    list_size (int_range 1 60)
      (triple
         (map float_of_int (int_range 0 9))
         (int_range 0 9)
         (map float_of_int (int_range 0 9)))
  in
  return (width, ops)

let prop_front_powered_matches_reference =
  qtest ~count:500 "powered front insert matches the 3-way list reference"
    gen_pw_insert_seq (fun (width, ops) ->
      let label =
        Printf.sprintf "pw width=%d n_ops=%d" width (List.length ops)
      in
      let stats = { r_inserts = 0; r_dominated = 0; r_truncations = 0 } in
      let front = Front.create_powered ~cells:1 ~width in
      if not (Front.powered front) then
        QCheck2.Test.fail_reportf "%s: create_powered not powered" label;
      let reference = ref [] in
      List.iteri
        (fun k (area, count, power) ->
          reference :=
            pinsert ~width ~stats !reference
              { p_area = area; p_count = count; p_power = power };
          Front.insert_pw front 0 ~area ~count ~power ~split:k ~parent:(-1);
          let len = Front.length front 0 in
          if len <> List.length !reference then
            QCheck2.Test.fail_reportf "%s: after op %d length front=%d ref=%d"
              label k len (List.length !reference);
          List.iteri
            (fun i r ->
              if
                Front.area front 0 i <> r.p_area
                || Front.count front 0 i <> r.p_count
                || Front.power front 0 i <> r.p_power
              then
                QCheck2.Test.fail_reportf
                  "%s: after op %d elt %d front=(%g,%d,%g) ref=(%g,%d,%g)"
                  label k i (Front.area front 0 i) (Front.count front 0 i)
                  (Front.power front 0 i) r.p_area r.p_count r.p_power;
              (* covers_pw must agree with the reference set's dominance
                 view of every surviving element (probed exactly). *)
              if
                not
                  (Front.covers_pw front 0 ~area:r.p_area ~count:r.p_count
                     ~power:r.p_power)
              then
                QCheck2.Test.fail_reportf
                  "%s: after op %d covers_pw misses its own element %d" label
                  k i)
            !reference)
        ops;
      check_stats_equal ~label front stats)

(* [recycle_powered] must be indistinguishable from [create_powered],
   whatever kind of store donates the planes. *)
let prop_front_recycle_powered_matches_create =
  qtest ~count:200 "recycled powered front matches a fresh create_powered"
    gen_pw_insert_seq (fun (width, ops) ->
      let label = Printf.sprintf "pw recycle width=%d" width in
      (* donate once a 2-way store, once a powered one *)
      List.for_all
        (fun donor ->
          let recycled = Front.recycle_powered donor ~cells:1 ~width in
          let fresh = Front.create_powered ~cells:1 ~width in
          List.iteri
            (fun k (area, count, power) ->
              Front.insert_pw fresh 0 ~area ~count ~power ~split:k
                ~parent:(-1);
              Front.insert_pw recycled 0 ~area ~count ~power ~split:k
                ~parent:(-1))
            ops;
          let len = Front.length fresh 0 in
          if len <> Front.length recycled 0 then
            QCheck2.Test.fail_reportf "%s: lengths differ" label;
          for k = 0 to len - 1 do
            if
              Front.area fresh 0 k <> Front.area recycled 0 k
              || Front.count fresh 0 k <> Front.count recycled 0 k
              || Front.power fresh 0 k <> Front.power recycled 0 k
              || Front.splits fresh (Front.state fresh 0 k)
                 <> Front.splits recycled (Front.state recycled 0 k)
            then QCheck2.Test.fail_reportf "%s: element %d differs" label k
          done;
          Front.inserts fresh = Front.inserts recycled
          && Front.dominated fresh = Front.dominated recycled
          && Front.truncations fresh = Front.truncations recycled)
        [
          (let d = Front.create ~cells:2 ~width:3 in
           Front.insert d 0 ~area:1.0 ~count:1 ~split:0 ~parent:(-1);
           d);
          (let d = Front.create_powered ~cells:2 ~width:3 in
           Front.insert_pw d 0 ~area:1.0 ~count:1 ~power:1.0 ~split:0
             ~parent:(-1);
           d);
        ])

(* Replays the phase-A build loop of [Rank_dp.build_tables] — the same
   iteration order, prune conditions and insert sequence — into {e both}
   a reference list matrix and a [Front], then requires every cell, every
   splits chain and all three tallies to agree.  Parent ids are read back
   from the front as the build goes, so this also pins the arena wiring. *)
let mirror_build ~width problem =
  let n = P.n_bunches problem and m = P.n_pairs problem in
  let cap = P.capacity problem and budget = P.budget problem in
  let stats = { r_inserts = 0; r_dominated = 0; r_truncations = 0 } in
  let dp = Array.make_matrix (m + 1) (n + 1) [] in
  let front = Front.create ~cells:((m + 1) * (n + 1)) ~width in
  let cell j i = (j * (n + 1)) + i in
  dp.(0).(0) <- [ { r_area = 0.0; r_count = 0; r_splits = [] } ];
  Front.seed front (cell 0 0) ~area:0.0 ~count:0;
  for j = 0 to m - 1 do
    for i = 0 to n do
      match dp.(j).(i) with
      | [] -> ()
      | elts ->
          let src = cell j i in
          let parents =
            Array.init (List.length elts) (Front.state front src)
          in
          let ins dst ~split k (e : relt) ~d_area ~d_count =
            dp.(j + 1).(dst) <-
              rinsert ~width ~stats dp.(j + 1).(dst)
                {
                  r_area = e.r_area +. d_area;
                  r_count = e.r_count + d_count;
                  r_splits = split :: e.r_splits;
                };
            Front.insert front
              (cell (j + 1) dst)
              ~area:(e.r_area +. d_area)
              ~count:(e.r_count + d_count)
              ~split ~parent:parents.(k)
          in
          let wires_above = P.wires_before problem i in
          let min_area =
            List.fold_left
              (fun acc e -> Float.min acc e.r_area)
              infinity elts
          in
          let exception Break in
          (try
             for i2 = i to n do
               if i2 = i then
                 (* Empty interval: pair j left unused. *)
                 List.iteri
                   (fun k e -> ins i ~split:i k e ~d_area:0.0 ~d_count:0)
                   elts
               else
                 match P.meeting_cost problem ~pair:j ~lo:i ~hi:i2 with
                 | None -> raise Break
                 | Some (d_area, d_count) ->
                     if min_area +. d_area > budget then raise Break;
                     let routing =
                       P.interval_area problem ~pair:j ~lo:i ~hi:i2
                     in
                     if routing > cap then raise Break;
                     List.iteri
                       (fun k e ->
                         let blocked =
                           P.blocked problem ~pair:j ~wires_above
                             ~reps_above:e.r_count
                         in
                         if
                           e.r_area +. d_area <= budget
                           && routing +. blocked <= cap
                         then ins i2 ~split:i2 k e ~d_area ~d_count)
                       elts
             done
           with Break -> ())
    done
  done;
  (dp, front, stats, cell)

let check_mirror ~label ~width problem =
  let dp, front, stats, cell = mirror_build ~width problem in
  let n = P.n_bunches problem and m = P.n_pairs problem in
  for j = 0 to m do
    for i = 0 to n do
      ignore (check_cell_equal ~label front (cell j i) dp.(j).(i))
    done
  done;
  ignore (check_stats_equal ~label front stats);
  (* The tallies must also match the real kernel's build — same loop,
     same sequence, so the real [build_tables] sees the same overflow. *)
  let tables = Ir_core.Rank_dp.build_tables ~max_pareto:width problem in
  if Ir_core.Rank_dp.table_truncations tables <> stats.r_truncations then
    QCheck2.Test.fail_reportf "%s: build_tables truncations %d <> mirror %d"
      label
      (Ir_core.Rank_dp.table_truncations tables)
      stats.r_truncations
  else true

let prop_front_mirror_build =
  qtest ~count:80 "mirrored DP build: flat front equals reference lists"
    Helpers.gen_instance (fun { problem; label } ->
      check_mirror ~label:(label ^ " width=8") ~width:8 problem
      && check_mirror ~label:(label ^ " width=1") ~width:1 problem)

let test_front_mirror_adversarial () =
  (* The frozen instances: one overflowing the default width 8, one where
     a width-1 front drops the optimum-bearing state. *)
  let p8 = overflowing_problem () in
  ignore (check_mirror ~label:"overflowing width=8" ~width:8 p8);
  let _, _, stats, _ = mirror_build ~width:8 p8 in
  Alcotest.(check bool) "overflowing instance truncates at width 8" true
    (stats.r_truncations > 0);
  let p1 = rank_changing_problem () in
  ignore (check_mirror ~label:"rank-changing width=1" ~width:1 p1);
  ignore (check_mirror ~label:"rank-changing width=8" ~width:8 p1)

let test_front_basics () =
  Alcotest.check_raises "create rejects zero width"
    (Invalid_argument "Front.create: width must be positive") (fun () ->
      ignore (Front.create ~cells:1 ~width:0));
  Alcotest.check_raises "create rejects zero cells"
    (Invalid_argument "Front.create: cells must be positive") (fun () ->
      ignore (Front.create ~cells:0 ~width:4));
  let f = Front.create ~cells:2 ~width:4 in
  Alcotest.(check int) "fresh cell empty" 0 (Front.length f 0);
  Front.seed f 0 ~area:0.0 ~count:0;
  Alcotest.(check int) "seeded" 1 (Front.length f 0);
  Alcotest.(check (list int)) "seed has no splits" []
    (Front.splits f (Front.state f 0 0));
  Alcotest.(check int) "seed bypasses stats" 0 (Front.inserts f);
  Alcotest.check_raises "seed requires an empty cell"
    (Invalid_argument "Front.seed: cell not empty") (fun () ->
      Front.seed f 0 ~area:1.0 ~count:1)

(* ---- shared-tables budget sweep --------------------------------------- *)

let gen_budget_instance =
  let open QCheck2.Gen in
  let* inst = Helpers.gen_instance in
  let* fractions = list_size (int_range 0 4) (float_range 0.01 0.9) in
  return (inst, fractions)

(* The per-domain scratch is a pure allocation-traffic optimization:
   builds and searches through an explicit reused scratch (the second
   build recycles the first one's Front store and working arrays) must
   be byte-identical — outcome, exact flag, and every deterministic
   counter — to the scratch-free path that allocates fresh tables. *)
let prop_scratch_reuse_invisible =
  qtest ~count:80 "scratch reuse is observationally invisible"
    Helpers.gen_instance (fun { problem; label } ->
      let leg scratch =
        Ir_obs.reset ();
        let t = Ir_core.Rank_dp.build_tables ?scratch problem in
        let o, w = Ir_core.Rank_dp.search_tables ?scratch t in
        (o, w, (Ir_obs.snapshot ()).Ir_obs.counters)
      in
      let fresh_o, fresh_w, fresh_c = leg None in
      let s = Ir_core.Rank_dp.create_scratch () in
      (* Prime the scratch with a full build + search first, so the
         measured leg really runs on recycled storage. *)
      ignore (leg (Some s));
      let reused_o, reused_w, reused_c = leg (Some s) in
      if not (Ir_core.Outcome.equal fresh_o reused_o) then
        QCheck2.Test.fail_reportf "%s: outcomes differ" label
      else if fresh_w <> reused_w then
        QCheck2.Test.fail_reportf "%s: witnesses differ" label
      else if fresh_c <> reused_c then
        QCheck2.Test.fail_reportf "%s: counters differ" label
      else true)

let prop_search_budgets_matches_individual =
  qtest ~count:120
    "shared-tables budget sweep matches per-fraction computes"
    gen_budget_instance (fun ({ problem; label }, fractions) ->
      let shared = Ir_core.Rank.compute_budgets problem fractions in
      let individual =
        List.map
          (fun f ->
            Ir_core.Rank_dp.compute
              (P.with_repeater_fraction problem f))
          fractions
      in
      if List.length shared <> List.length fractions then
        QCheck2.Test.fail_reportf "%s: %d outcomes for %d fractions" label
          (List.length shared) (List.length fractions)
      else begin
        List.iteri
          (fun idx (s, ind) ->
            let ok =
              Ir_core.Outcome.equal s ind
              (* The shared build can be exact where an individual
                 widening ladder gave up: then the shared rank is the
                 true one and the individual only a lower bound. *)
              || (s.Ir_core.Outcome.exact
                 && (not ind.Ir_core.Outcome.exact)
                 && s.Ir_core.Outcome.rank_wires
                    >= ind.Ir_core.Outcome.rank_wires)
            in
            if not ok then
              QCheck2.Test.fail_reportf
                "%s: fraction #%d shared=%d/%b/%b individual=%d/%b/%b" label
                idx s.Ir_core.Outcome.rank_wires s.Ir_core.Outcome.assignable
                s.Ir_core.Outcome.exact ind.Ir_core.Outcome.rank_wires
                ind.Ir_core.Outcome.assignable ind.Ir_core.Outcome.exact)
          (List.combine shared individual);
        true
      end)

(* ---- phase-B probe scheduling: hints, probe fan, counter canary ------- *)

let gen_hint_instance =
  let open QCheck2.Gen in
  let* inst = Helpers.gen_instance in
  let* hint = int_range (-5) 30 in
  return (inst, hint)

let prop_hinted_search_matches_cold =
  qtest ~count:100 "hinted and fanned searches match the cold search"
    gen_hint_instance (fun ({ problem; label }, hint) ->
      let tables = Ir_core.Rank_dp.build_tables problem in
      let cold, cold_w = Ir_core.Rank_dp.search_tables tables in
      let check name (o, w) =
        if not (Ir_core.Outcome.equal cold o) || cold_w <> w then
          QCheck2.Test.fail_reportf "%s: %s search diverges: %d/%b vs %d/%b"
            label name cold.Ir_core.Outcome.rank_wires
            cold.Ir_core.Outcome.assignable o.Ir_core.Outcome.rank_wires
            o.Ir_core.Outcome.assignable
        else true
      in
      (* A random (usually wrong) hint, the correct boundary, an
         out-of-range hint, and a speculative fan: probe schedules differ,
         outcome and witness must not. *)
      check "random-hint" (Ir_core.Rank_dp.search_tables ~hint tables)
      && check "exact-hint"
           (Ir_core.Rank_dp.search_tables
              ~hint:cold.Ir_core.Outcome.boundary_bunch tables)
      && check "overshoot-hint"
           (Ir_core.Rank_dp.search_tables
              ~hint:(P.n_bunches problem + 17)
              tables)
      && check "fan" (Ir_core.Rank_dp.search_tables ~probe_fan:3 tables))

let test_counter_canary () =
  (* Frozen mid-size instance; the measured footprint when this canary was
     recorded was 5483 witness probes and 733197 packed wires (with the
     greedy-fill capacity screen already deflecting 75 of 83 suffix
     checks).  The ceilings leave ~25% headroom: a change that bursts them
     is doing materially more feasibility work per search and should be
     understood, not ratified by bumping the numbers. *)
  let p = baseline_130nm_small () in
  let before = Ir_obs.snapshot () in
  let o = Ir_core.Rank_dp.compute p in
  let after = Ir_obs.snapshot () in
  let delta name =
    Option.value ~default:0 (Ir_obs.find_counter after name)
    - Option.value ~default:0 (Ir_obs.find_counter before name)
  in
  Alcotest.(check bool) "canary assignable and exact" true
    (o.assignable && o.exact);
  let probes = delta "rank_dp/witness_probes" in
  if probes > 7_000 then
    Alcotest.failf "witness-probe budget burst: %d > 7000" probes;
  let packed = delta "greedy_fill/wires_packed" in
  if packed > 950_000 then
    Alcotest.failf "greedy-fill packing budget burst: %d > 950000" packed

let prop_default_search_exact =
  qtest ~count:100 "default search always reports exact"
    Helpers.gen_instance (fun { problem; label } ->
      let o = Ir_core.Rank_dp.compute problem in
      if not o.exact then
        QCheck2.Test.fail_reportf "%s: default search left exact=false" label
      else true)

let prop_feasible_boundary_monotone =
  qtest ~count:60 "boundary feasibility is monotone"
    Helpers.gen_instance (fun { problem; label } ->
      let n = P.n_bunches problem in
      let ok = Array.init (n + 1) (Ir_core.Rank_dp.feasible_boundary problem) in
      let bad = ref false in
      for c = 0 to n - 1 do
        if ok.(c + 1) && not ok.(c) then bad := true
      done;
      if !bad then QCheck2.Test.fail_reportf "%s: non-monotone" label
      else true)

(* ---- level-stepped builder & table codec ------------------------------ *)

let test_builder_matches_build () =
  (* The stepped builder must be byte-identical to the monolithic build:
     same front planes, same arena layout, same tallies — checked at the
     strongest level available, the serialized table bytes. *)
  let p = baseline_130nm_small () in
  let mono = Ir_core.Rank_dp.build_tables p in
  let b = Ir_core.Rank_dp.builder p in
  Alcotest.(check bool) "not done at start" false
    (Ir_core.Rank_dp.builder_done b);
  Alcotest.(check int) "levels = n_pairs" (P.n_pairs p)
    (Ir_core.Rank_dp.builder_levels b);
  let steps = ref 0 in
  while Ir_core.Rank_dp.builder_step b do
    incr steps
  done;
  Alcotest.(check int) "stepped once per level"
    (Ir_core.Rank_dp.builder_levels b)
    (!steps + 1);
  let stepped = Ir_core.Rank_dp.builder_finish b in
  Alcotest.(check string) "stepped tables = monolithic tables (bytes)"
    (Ir_core.Rank_dp.encode_tables mono)
    (Ir_core.Rank_dp.encode_tables stepped)

let test_builder_finish_early () =
  let p = baseline_130nm_small () in
  let b = Ir_core.Rank_dp.builder p in
  ignore (Ir_core.Rank_dp.builder_step b);
  Alcotest.check_raises "finish before last level"
    (Invalid_argument "Rank_dp.builder_finish: build not complete")
    (fun () -> ignore (Ir_core.Rank_dp.builder_finish b))

let test_decode_fuzz () =
  let p = baseline_130nm_small () in
  let t = Ir_core.Rank_dp.build_tables p in
  let blob = Ir_core.Rank_dp.encode_tables t in
  (match Ir_core.Rank_dp.decode_tables p blob with
  | None -> Alcotest.fail "pristine blob rejected"
  | Some restored ->
      let o, w = Ir_core.Rank_dp.search_tables restored in
      let o0, w0 = Ir_core.Rank_dp.search_tables t in
      Alcotest.(check bool) "restored search identical" true
        (Ir_core.Outcome.equal o o0 && w = w0));
  let len = String.length blob in
  (* Truncations at every regime: empty, inside the digest, digest-only,
     mid-payload, one byte short — all must come back [None], never
     raise (the digest check runs before [Marshal] ever sees bytes). *)
  List.iter
    (fun l ->
      if l < len then
        match Ir_core.Rank_dp.decode_tables p (String.sub blob 0 l) with
        | None -> ()
        | Some _ -> Alcotest.failf "truncated to %d bytes accepted" l)
    [ 0; 1; 15; 16; 17; len / 4; len / 2; len - 1 ];
  (* Single-bit flips striding the whole blob (digest and payload): a
     flip in the payload breaks the digest, a flip in the digest breaks
     the comparison — either way [None]. *)
  let step = max 1 (len / 97) in
  let pos = ref 0 in
  while !pos < len do
    let b = Bytes.of_string blob in
    Bytes.set b !pos
      (Char.chr (Char.code (Bytes.get b !pos) lxor (1 lsl (!pos mod 8))));
    (match Ir_core.Rank_dp.decode_tables p (Bytes.to_string b) with
    | None -> ()
    | Some _ -> Alcotest.failf "bit flip at offset %d accepted" !pos);
    pos := !pos + step
  done;
  (* A valid blob presented against the wrong problem (different
     bunching) must fail the dimension check. *)
  let other = baseline_130nm_small ~bunch_size:100 () in
  if P.n_bunches other <> P.n_bunches p then
    match Ir_core.Rank_dp.decode_tables other blob with
    | None -> ()
    | Some _ -> Alcotest.fail "wrong-geometry blob accepted"

(* ---- grid-batched engine ---------------------------------------------- *)

let base_clock p = (P.arch p).Ir_ia.Arch.design.Ir_tech.Design.clock

(* The reference path: derive the point's problem exactly as an
   independent per-point sweep would and run the per-point DP on it. *)
let reference_problem base (pt : Ir_core.Rank_grid.point) =
  let p =
    match pt.Ir_core.Rank_grid.materials with
    | None -> base
    | Some m -> P.with_materials base m
  in
  let p =
    match pt.Ir_core.Rank_grid.clock with
    | None -> p
    | Some c -> P.with_clock p c
  in
  match pt.Ir_core.Rank_grid.fraction with
  | None -> p
  | Some f -> P.with_repeater_fraction p f

let gen_grid_instance =
  let open QCheck2.Gen in
  let* inst = Helpers.gen_instance in
  let* raw_points =
    list_size (int_range 0 6)
      (let* k = opt (float_range 1.5 4.2) in
       let* miller = opt (float_range 1.0 2.0) in
       let* clock_scale = opt (float_range 0.4 2.5) in
       let* fraction = opt (float_range 0.02 0.95) in
       return (k, miller, clock_scale, fraction))
  in
  return (inst, raw_points)

let grid_points base raw =
  Array.of_list
    (List.map
       (fun (k, miller, clock_scale, fraction) ->
         let materials =
           match (k, miller) with
           | None, None -> None
           | _ -> Some (Ir_ia.Materials.v ?k ?miller ())
         in
         let clock = Option.map (fun s -> s *. base_clock base) clock_scale in
         { Ir_core.Rank_grid.materials; clock; fraction })
       raw)

let prop_grid_matches_per_point =
  qtest ~count:60 "grid wavefront matches independent per-point computes"
    gen_grid_instance (fun ({ problem; label }, raw) ->
      let points = grid_points problem raw in
      let grid = Ir_core.Rank_grid.evaluate problem points in
      Array.iteri
        (fun i pt ->
          let g = Ir_core.Rank_grid.outcome grid i in
          let ind = Ir_core.Rank_dp.compute (reference_problem problem pt) in
          let ok =
            Ir_core.Outcome.equal g ind
            (* Same corner as the budget sweep: the shared (wider) build
               can be exact where the individual ladder capped out. *)
            || (g.Ir_core.Outcome.exact
               && (not ind.Ir_core.Outcome.exact)
               && g.Ir_core.Outcome.rank_wires >= ind.Ir_core.Outcome.rank_wires
               )
          in
          if not ok then
            QCheck2.Test.fail_reportf
              "%s: cell #%d grid=%d/%b/%b individual=%d/%b/%b" label i
              g.Ir_core.Outcome.rank_wires g.Ir_core.Outcome.assignable
              g.Ir_core.Outcome.exact ind.Ir_core.Outcome.rank_wires
              ind.Ir_core.Outcome.assignable ind.Ir_core.Outcome.exact)
        points;
      true)

let prop_eval_batch_matches_compute =
  qtest ~count:40 "heterogeneous batch matches per-problem computes"
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 1 4) Helpers.gen_instance)
    (fun insts ->
      let problems =
        Array.of_list (List.map (fun i -> i.Helpers.problem) insts)
      in
      let batch = Ir_core.Rank_grid.eval_batch problems in
      Array.iteri
        (fun i p ->
          let ind = Ir_core.Rank_dp.compute p in
          if not (Ir_core.Outcome.equal batch.(i) ind) then
            QCheck2.Test.fail_reportf "batch cell #%d diverges" i)
        problems;
      true)

(* ---- admissible-bound pruning ----------------------------------------- *)

(* The ε=0 soundness contract: pruning is observationally invisible.
   Every outcome field — rank, assignability, boundary, exact flag —
   must be byte-identical to the unpruned path on arbitrary instances,
   not just the Table-4 corpus the bench gates. *)
let prop_pruned_compute_identical =
  qtest ~count:150 "pruned compute = exact compute (epsilon 0)"
    Helpers.gen_instance (fun { problem; label } ->
      let exact = Ir_core.Rank_dp.compute problem in
      let pruned = Ir_core.Rank_dp.compute ~prune:true problem in
      if not (Ir_core.Outcome.equal exact pruned) then
        QCheck2.Test.fail_reportf "%s: pruned=%d/%b/%b exact=%d/%b/%b" label
          pruned.Ir_core.Outcome.rank_wires pruned.Ir_core.Outcome.assignable
          pruned.Ir_core.Outcome.exact exact.Ir_core.Outcome.rank_wires
          exact.Ir_core.Outcome.assignable exact.Ir_core.Outcome.exact
      else true)

let prop_pruned_budgets_identical =
  qtest ~count:80 "pruned budget sweep = exact budget sweep (epsilon 0)"
    gen_budget_instance (fun ({ problem; label }, fractions) ->
      let exact = Ir_core.Rank_dp.search_budgets problem fractions in
      let pruned =
        Ir_core.Rank_dp.search_budgets ~prune:true problem fractions
      in
      List.iteri
        (fun i (e, p) ->
          if not (Ir_core.Outcome.equal e p) then
            QCheck2.Test.fail_reportf
              "%s: fraction #%d pruned=%d/%b/%b exact=%d/%b/%b" label i
              p.Ir_core.Outcome.rank_wires p.Ir_core.Outcome.assignable
              p.Ir_core.Outcome.exact e.Ir_core.Outcome.rank_wires
              e.Ir_core.Outcome.assignable e.Ir_core.Outcome.exact)
        (List.combine exact pruned);
      true)

(* The two frozen adversarial instances from the truncation work are the
   hard cases for pruning too: one overflows the default front width (the
   widening ladder engages), the other loses the optimum behind a width-1
   truncation.  Pruning must change nothing on either. *)
let test_pruned_adversarial_identity () =
  List.iter
    (fun (name, p) ->
      let exact = Ir_core.Rank_dp.compute p in
      let pruned = Ir_core.Rank_dp.compute ~prune:true p in
      Alcotest.(check bool) (name ^ ": identical outcome") true
        (Ir_core.Outcome.equal exact pruned))
    [
      ("overflowing", overflowing_problem ());
      ("rank-changing", rank_changing_problem ());
    ]

(* Admissibility of the bound oracle itself: the optimistic boundary from
   the root state can never undershoot the DP's true boundary, and the
   greedy-chain pessimistic floor can never overshoot it. *)
let prop_bounds_bracket_boundary =
  qtest ~count:120 "optimistic/pessimistic bounds bracket the boundary"
    Helpers.gen_instance (fun { problem; label } ->
      let o = Ir_core.Rank_dp.compute problem in
      let b = Ir_core.Bounds.create problem in
      let budget = P.budget problem in
      let opt =
        Ir_core.Bounds.optimistic_boundary b ~budget ~area:0.0 ~from:0
      in
      let pess =
        (Ir_core.Bounds.pessimistic_probe b ~budget).Ir_core.Bounds.pb_boundary
      in
      if o.Ir_core.Outcome.assignable && opt < o.Ir_core.Outcome.boundary_bunch
      then
        QCheck2.Test.fail_reportf "%s: optimistic %d < boundary %d" label opt
          o.Ir_core.Outcome.boundary_bunch
      else if
        o.Ir_core.Outcome.assignable
        && o.Ir_core.Outcome.exact
        && pess > o.Ir_core.Outcome.boundary_bunch
      then
        QCheck2.Test.fail_reportf "%s: pessimistic %d > boundary %d" label
          pess o.Ir_core.Outcome.boundary_bunch
      else if pess > 0 && not (Ir_core.Rank_dp.feasible_boundary problem pess)
      then
        QCheck2.Test.fail_reportf "%s: pessimistic %d not achievable" label
          pess
      else true)

(* ε > 0 is deliberately lossy: the compressed rank may only ever be a
   lower bound, and any deviation must surrender the exact claim. *)
let prop_epsilon_flagged_lower_bound =
  qtest ~count:100 "epsilon-compressed rank is a flagged lower bound"
    Helpers.gen_instance (fun { problem; label } ->
      let exact = Ir_core.Rank_dp.compute problem in
      let eps = Ir_core.Rank_dp.compute ~prune:true ~epsilon:0.5 problem in
      if eps.Ir_core.Outcome.rank_wires > exact.Ir_core.Outcome.rank_wires
      then
        QCheck2.Test.fail_reportf "%s: epsilon rank %d beats exact %d" label
          eps.Ir_core.Outcome.rank_wires exact.Ir_core.Outcome.rank_wires
      else if
        eps.Ir_core.Outcome.rank_wires < exact.Ir_core.Outcome.rank_wires
        && eps.Ir_core.Outcome.exact
      then
        QCheck2.Test.fail_reportf
          "%s: epsilon dropped rank %d -> %d but still claims exact" label
          exact.Ir_core.Outcome.rank_wires eps.Ir_core.Outcome.rank_wires
      else true)

let test_epsilon_zero_is_exact_mode () =
  (* epsilon = 0.0 must take the exact code path bit for bit: the inflated
     cover check is never even evaluated (a *. (1. +. 0.) = a would make
     it the plain dominance check anyway, but the guard keeps the hot
     loop untouched).  Also: a negative epsilon is a caller bug. *)
  let p = baseline_130nm_small () in
  let a = Ir_core.Rank_dp.compute p in
  let b = Ir_core.Rank_dp.compute ~epsilon:0.0 p in
  Alcotest.(check bool) "epsilon 0 identical" true (Ir_core.Outcome.equal a b);
  Alcotest.check_raises "negative epsilon rejected"
    (Invalid_argument "Rank_dp.builder: epsilon < 0") (fun () ->
      ignore (Ir_core.Rank_dp.compute ~epsilon:(-0.1) p))

(* Pruned tables remember their incumbent floor and refuse snapshot
   encoding — a snapshot replays against arbitrary budgets the floor's
   witness was never certified for. *)
let test_pruned_tables_not_encodable () =
  let p = baseline_130nm_small () in
  let exact_t = Ir_core.Rank_dp.build_tables p in
  Alcotest.(check int) "unpruned floor is -1" (-1)
    (Ir_core.Rank_dp.table_incumbent_floor exact_t);
  Alcotest.(check bool) "unpruned tables encode" true
    (String.length (Ir_core.Rank_dp.encode_tables exact_t) > 0);
  let pr = Ir_core.Rank_dp.prune_for p in
  let pruned_t = Ir_core.Rank_dp.build_tables ~prune:pr p in
  if Ir_core.Rank_dp.table_incumbent_floor pruned_t >= 0 then
    Alcotest.check_raises "pruned tables refuse encoding"
      (Invalid_argument "Rank_dp.encode_tables: pruned/approximate tables") (fun () ->
        ignore (Ir_core.Rank_dp.encode_tables pruned_t))

(* The probe gate: every non-empty cell the optimistic pre-check turns
   away at a barrier is a packer call that never ran, tallied in
   bounds/probe_gated.  The counter is structural — the gate reads the
   incumbent only at sequential barriers — so it must not move with the
   worker count, and it must actually fire on the pruned baseline (a
   gate that never gates is a dead counter). *)
let test_probe_gated_jobs_invariant () =
  let p = baseline_130nm_small () in
  let gated () =
    Option.value ~default:0
      (Ir_obs.find_counter (Ir_obs.snapshot ()) "bounds/probe_gated")
  in
  Ir_obs.reset ();
  ignore (Ir_core.Rank_dp.compute ~prune:true p);
  let seq = gated () in
  Alcotest.(check bool) "gate fires on the pruned baseline" true (seq > 0);
  let points =
    Array.of_list
      (List.map
         (fun f -> Ir_core.Rank_grid.point ~fraction:f ())
         [ 0.2; 0.4; 0.6; 0.8 ])
  in
  Ir_obs.reset ();
  ignore (Ir_core.Rank_grid.evaluate ~jobs:1 ~prune:true p points);
  let g1 = gated () in
  Ir_obs.reset ();
  ignore (Ir_core.Rank_grid.evaluate ~jobs:4 ~prune:true p points);
  let g4 = gated () in
  Ir_obs.reset ();
  Alcotest.(check int) "probe_gated identical at jobs=1 and jobs=4" g1 g4;
  Alcotest.(check bool) "gate fired in the grid engine" true (g1 > 0)

(* The grid engine with pruning: identical outcomes to the unpruned grid,
   and the bounds/* counters (structural — the incumbent is published
   only at the wavefront's sequential barriers) invariant across worker
   counts. *)
let prop_grid_pruned_identical =
  qtest ~count:40 "pruned grid = exact grid, bounds counters jobs-invariant"
    gen_grid_instance (fun ({ problem; label }, raw) ->
      let points = grid_points problem raw in
      let exact = Ir_core.Rank_grid.evaluate problem points in
      Ir_obs.reset ();
      let p1 = Ir_core.Rank_grid.evaluate ~jobs:1 ~prune:true problem points in
      let snap1 = (Ir_obs.snapshot ()).Ir_obs.counters in
      Ir_obs.reset ();
      let pn = Ir_core.Rank_grid.evaluate ~jobs:4 ~prune:true problem points in
      let snapn = (Ir_obs.snapshot ()).Ir_obs.counters in
      Ir_obs.reset ();
      Array.iteri
        (fun i _ ->
          let e = Ir_core.Rank_grid.outcome exact i in
          let a = Ir_core.Rank_grid.outcome p1 i in
          let b = Ir_core.Rank_grid.outcome pn i in
          if not (Ir_core.Outcome.equal e a && Ir_core.Outcome.equal e b) then
            QCheck2.Test.fail_reportf "%s: cell #%d diverges under pruning"
              label i)
        points;
      let bounds snap =
        List.filter
          (fun (name, _) ->
            String.length name >= 7 && String.sub name 0 7 = "bounds/")
          snap
      in
      if bounds snap1 <> bounds snapn then
        QCheck2.Test.fail_reportf "%s: bounds/* counters depend on jobs" label
      else true)

let test_grid_pruned_floor_requery () =
  (* A pruned plane asked below the fraction its floor was certified at
     must rebuild (the floor witness only holds for budgets >= the build
     family's smallest), and the answer must match a cold compute. *)
  let p = baseline_130nm_small () in
  let grid =
    Ir_core.Rank_grid.evaluate ~prune:true p
      [| Ir_core.Rank_grid.point ~fraction:0.4 () |]
  in
  let changed =
    Ir_core.Rank_grid.perturb grid (Ir_core.Rank_grid.point ~fraction:0.05 ())
  in
  let idx = Ir_core.Rank_grid.cells grid - 1 in
  Alcotest.(check bool) "perturb reports the new cell" true
    (Array.mem idx changed);
  let cold =
    Ir_core.Rank_dp.compute (P.with_repeater_fraction p 0.05)
  in
  Alcotest.(check bool) "below-floor query matches cold compute" true
    (Ir_core.Outcome.equal cold (Ir_core.Rank_grid.outcome grid idx))

let test_grid_budgets_column () =
  (* Satellite: the grid's R column must be byte-identical to
     [search_budgets] (which itself matches per-point computes). *)
  let p = baseline_130nm_small () in
  let fractions = [ 0.1; 0.2; 0.3; 0.4; 0.5 ] in
  let budgets = Ir_core.Rank_dp.search_budgets p fractions in
  let grid =
    Ir_core.Rank_grid.evaluate p
      (Array.of_list
         (List.map
            (fun f -> Ir_core.Rank_grid.point ~fraction:f ())
            fractions))
  in
  Alcotest.(check int) "one plane" 1 (Ir_core.Rank_grid.planes grid);
  List.iteri
    (fun i b ->
      Alcotest.(check bool)
        (Printf.sprintf "fraction #%d identical" i)
        true
        (Ir_core.Outcome.equal b (Ir_core.Rank_grid.outcome grid i)))
    budgets

let test_grid_witness_identity () =
  (* Witnesses, not just ranks: the stepped+widened+rebudgeted path must
     return the exact witness of the per-point search. *)
  let p = baseline_130nm_small () in
  let b = Ir_core.Rank_dp.builder (P.with_repeater_fraction p 0.5) in
  while Ir_core.Rank_dp.builder_step b do
    ()
  done;
  let tables = Ir_core.Rank_dp.widen_tables (Ir_core.Rank_dp.builder_finish b) in
  Alcotest.(check int) "baseline truncation-free" 0
    (Ir_core.Rank_dp.table_truncations tables);
  List.iter
    (fun f ->
      let go, gw = Ir_core.Rank_dp.search_tables_rebudget ~fraction:f tables in
      let io, iw =
        Ir_core.Rank_dp.compute_with_witness (P.with_repeater_fraction p f)
      in
      Alcotest.(check bool)
        (Printf.sprintf "outcome at %.1f" f)
        true
        (Ir_core.Outcome.equal go io);
      if gw <> iw then Alcotest.failf "witness at %.1f diverges" f)
    [ 0.1; 0.3; 0.5 ]

let test_grid_perturb_touches_fewer () =
  let p = baseline_130nm_small () in
  let counter name =
    Option.value ~default:0 (Ir_obs.find_counter (Ir_obs.snapshot ()) name)
  in
  let low_k = Ir_ia.Materials.v ~k:2.7 () in
  let pt = Ir_core.Rank_grid.point in
  let points =
    [|
      pt ~fraction:0.1 ();
      pt ~fraction:0.3 ();
      pt ~materials:low_k ~fraction:0.1 ();
      pt ~materials:low_k ~fraction:0.3 ();
    |]
  in
  let g = Ir_core.Rank_grid.evaluate p points in
  Alcotest.(check int) "two planes" 2 (Ir_core.Rank_grid.planes g);
  let before = counter "grid/perturb_recomputed" in
  (* New R point under the resident budget: exactly one cell computed. *)
  let c1 = Ir_core.Rank_grid.perturb g (pt ~fraction:0.2 ()) in
  Alcotest.(check (array int)) "in-budget R delta recomputes 1 cell" [| 4 |] c1;
  (* R point above the low-k plane's resident budget: that plane's slice
     (cells 2, 3 and the new 5) — strictly fewer than the 6-cell grid. *)
  let c2 =
    Ir_core.Rank_grid.perturb g (pt ~materials:low_k ~fraction:0.5 ())
  in
  let sorted = Array.copy c2 in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "budget-growth delta recomputes its plane only"
    [| 2; 3; 5 |] sorted;
  Alcotest.(check bool) "strictly fewer than the grid" true
    (Array.length c2 < Ir_core.Rank_grid.cells g);
  (* New clock value: one fresh plane, one cell. *)
  let c3 =
    Ir_core.Rank_grid.perturb g (pt ~clock:(1.3 *. base_clock p) ())
  in
  Alcotest.(check (array int)) "new-plane delta recomputes 1 cell" [| 6 |] c3;
  Alcotest.(check int) "three planes now" 3 (Ir_core.Rank_grid.planes g);
  Alcotest.(check int) "perturb_recomputed counted every recompute" 5
    (counter "grid/perturb_recomputed" - before);
  (* Every cell — original, appended, and rebuilt — still matches the
     independent per-point path. *)
  let all_points =
    Array.append points
      [|
        pt ~fraction:0.2 ();
        pt ~materials:low_k ~fraction:0.5 ();
        pt ~clock:(1.3 *. base_clock p) ();
      |]
  in
  Array.iteri
    (fun i ptd ->
      let ind = Ir_core.Rank_dp.compute (reference_problem p ptd) in
      Alcotest.(check bool)
        (Printf.sprintf "cell #%d matches per-point" i)
        true
        (Ir_core.Outcome.equal ind (Ir_core.Rank_grid.outcome g i)))
    all_points

let test_with_materials_equals_fresh () =
  (* [Problem.with_materials] must be indistinguishable from constructing
     the instance from scratch at the new materials — strongest check:
     identical phase-A table bytes. *)
  let design =
    Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:40_000 ~clock:8e8 ()
  in
  let bunches =
    Array.init 6 (fun i ->
        { Ir_wld.Dist.length = 2e-3 /. float_of_int (i + 1); count = 3 })
  in
  let base =
    P.of_bunches ~arch:(Ir_ia.Arch.make ~design ()) ~bunches ()
  in
  let mats = Ir_ia.Materials.v ~k:2.2 ~miller:1.5 () in
  let derived = P.with_materials base mats in
  let fresh =
    P.of_bunches
      ~arch:(Ir_ia.Arch.make ~materials:mats ~design ())
      ~bunches ()
  in
  Alcotest.(check string) "identical table bytes"
    (Ir_core.Rank_dp.encode_tables (Ir_core.Rank_dp.build_tables fresh))
    (Ir_core.Rank_dp.encode_tables (Ir_core.Rank_dp.build_tables derived));
  let od = Ir_core.Rank_dp.compute derived in
  let off = Ir_core.Rank_dp.compute fresh in
  Alcotest.(check bool) "identical outcomes" true
    (Ir_core.Outcome.equal od off)

let () =
  Alcotest.run "core"
    [
      ("outcome", [ Alcotest.test_case "basics" `Quick test_outcome ]);
      ( "rank_dp",
        [
          Alcotest.test_case "all meet" `Quick test_dp_all_meet;
          Alcotest.test_case "zero budget" `Quick test_dp_zero_budget;
          Alcotest.test_case "unassignable" `Quick test_dp_unassignable;
          Alcotest.test_case "binary vs exhaustive search" `Slow
            test_dp_binary_vs_exhaustive;
          Alcotest.test_case "prebuilt tables reuse" `Quick test_tables_reuse;
          Alcotest.test_case "pareto overflow widens to exact" `Quick
            test_pareto_overflow_widens;
          Alcotest.test_case "pareto truncation changes rank" `Quick
            test_pareto_truncation_changes_rank;
          Alcotest.test_case "counter-budget canary" `Quick
            test_counter_canary;
          prop_hinted_search_matches_cold;
          prop_default_search_exact;
          prop_binary_matches_exhaustive;
          prop_dp_equals_brute;
          prop_feasible_boundary_monotone;
          prop_rank_monotone_in_budget;
          prop_rank_monotone_in_k;
          prop_search_budgets_matches_individual;
          prop_scratch_reuse_invisible;
          Alcotest.test_case "stepped builder = monolithic build" `Quick
            test_builder_matches_build;
          prop_pruned_compute_identical;
          prop_pruned_budgets_identical;
          Alcotest.test_case "pruned adversarial identity" `Quick
            test_pruned_adversarial_identity;
          prop_bounds_bracket_boundary;
          prop_epsilon_flagged_lower_bound;
          Alcotest.test_case "epsilon zero is exact mode" `Quick
            test_epsilon_zero_is_exact_mode;
          Alcotest.test_case "pruned tables not encodable" `Quick
            test_pruned_tables_not_encodable;
          Alcotest.test_case "builder finish guard" `Quick
            test_builder_finish_early;
          Alcotest.test_case "table codec fuzz" `Quick test_decode_fuzz;
        ] );
      ( "grid",
        [
          Alcotest.test_case "R column = search_budgets" `Quick
            test_grid_budgets_column;
          Alcotest.test_case "witness identity" `Quick
            test_grid_witness_identity;
          Alcotest.test_case "perturb touches fewer cells" `Quick
            test_grid_perturb_touches_fewer;
          Alcotest.test_case "with_materials = fresh construction" `Quick
            test_with_materials_equals_fresh;
          prop_grid_matches_per_point;
          prop_eval_batch_matches_compute;
          prop_grid_pruned_identical;
          Alcotest.test_case "pruned plane floor re-query" `Quick
            test_grid_pruned_floor_requery;
          Alcotest.test_case "probe gate fires, jobs-invariant" `Quick
            test_probe_gated_jobs_invariant;
        ] );
      ( "front",
        [
          Alcotest.test_case "basics" `Quick test_front_basics;
          Alcotest.test_case "adversarial mirrored builds" `Quick
            test_front_mirror_adversarial;
          prop_front_insert_matches_reference;
          prop_front_recycle_matches_create;
          prop_front_powered_matches_reference;
          prop_front_recycle_powered_matches_create;
          prop_front_mirror_build;
        ] );
      ( "rank_greedy",
        [
          Alcotest.test_case "baseline sanity" `Quick test_greedy_baseline_sane;
          prop_greedy_le_dp;
        ] );
      ( "figure 2",
        [ Alcotest.test_case "counterexample" `Quick test_figure2 ] );
      ( "rank_exact",
        [
          Alcotest.test_case "smoke" `Quick test_exact_dp_smoke;
          Alcotest.test_case "size guard" `Quick test_exact_dp_guard;
          prop_exact_le_dp;
        ] );
      ( "rank_threshold",
        [
          Alcotest.test_case "baseline" `Quick test_threshold_baseline;
          prop_threshold_le_dp;
        ] );
      ( "noise-aware rank",
        [ Alcotest.test_case "limits and shielding" `Quick
            test_noise_limited_rank ] );
      ( "assignment",
        [
          Alcotest.test_case "baseline witness" `Quick
            test_assignment_witness;
          prop_witness_checks;
        ] );
      ( "facade",
        [ Alcotest.test_case "of_design" `Quick test_rank_facade ] );
    ]
