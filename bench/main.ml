(* Benchmark & reproduction harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (DESIGN.md's experiment index E1-E9) with paper-vs-measured columns.
   Part 2 adds ablations over the reproduction's own design choices
   (bunch size, capacitance model, Pareto width, target model).
   Part 3 runs Bechamel micro-benchmarks of the core computations,
   including the paper's Section 5.2 runtime claim (rank in < 200 s —
   here: well under a second per point).

   Run with:  dune exec bench/main.exe *)

let section title = Format.printf "@.==== %s ====@.@." title

(* IA_RANK_BENCH_QUICK=1 shrinks the sweep workload (100k-gate design,
   small cross-node matrix, short microbenchmarks) so the whole `sweeps`
   pipeline — including the jobs=1 vs jobs=N rank/counter identity
   checks — runs in seconds.  `dune runtest` drives this mode via a rule
   in bench/dune, making the determinism checks part of tier-1 verify.
   Quick runs export to results-quick/ so they can never clobber the
   committed full-workload results/. *)
let quick =
  match Sys.getenv_opt "IA_RANK_BENCH_QUICK" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let sweep_config () =
  if quick then
    {
      Ir_sweep.Table4.default_config with
      design = Ir_core.Rank.baseline_design ~gates:100_000 Ir_tech.Node.N130;
    }
  else Ir_sweep.Table4.default_config

let results_dir () = if quick then "results-quick" else "results"

(* Honesty line printed by every leg: which results directory this
   run's artifacts land in.  Quick runs export to results-quick/ —
   gitignored — so a shrunk-workload run can never masquerade as the
   committed full-workload results/. *)
let leg_results_line leg =
  Format.printf "[%s] artifacts export to %s/%s@." leg (results_dir ())
    (if quick then " (quick mode; gitignored)" else "")

(* ---------------------------------------------------------------------- *)
(* Part 1: experiment regeneration                                         *)
(* ---------------------------------------------------------------------- *)

let experiment_tables () =
  section "E7: Tables 2/3 (baseline and technology parameters)";
  List.iter
    (fun n ->
      Format.printf "%a@.@." Ir_tech.Stack.pp_table3 (Ir_tech.Stack.of_node n))
    [ Ir_tech.Node.N180; Ir_tech.Node.N130; Ir_tech.Node.N90 ];
  Format.printf
    "Baseline (Table 2): k=3.9, Miller=2.0, repeater fraction=0.4,@.2 \
     semi-global + 1 global layer-pairs, 500 MHz target clock.@."

(* Worker count for the parallel table4 leg.  On many-core hosts this is
   the Ir_exec default; on small boxes we still spawn 4 domains so the
   determinism check exercises real cross-domain interleaving (the
   speedup column then just reports ~1x). *)
let par_jobs () = max 4 (Ir_exec.default_jobs ())

(* The per-leg phase split: how much of a leg's (cumulative, across
   domains) busy time went into phase-A table builds vs boundary
   searches. *)
let phase_cell snap name =
  match Ir_obs.find_span snap name with
  | Some { Ir_obs.calls; seconds } ->
      Printf.sprintf "%.2f s / %d calls" seconds calls
  | None -> "-"

(* Per-sweep signature for the jobs=1 vs jobs=N identity checks: the
   rank and the exactness flag of every row.  (Normalized ranks derive
   from rank_wires, so this is the full result identity.) *)
let sweep_sig (s : Ir_sweep.Table4.sweep) =
  List.map
    (fun (r : Ir_sweep.Table4.row) ->
      ( r.param,
        r.outcome.Ir_core.Outcome.rank_wires,
        r.outcome.Ir_core.Outcome.exact ))
    s.rows

(* Snapshot for leg-identity comparison: everything except the
   [exec/sched/] namespace, whose counters (steals, clamp events) count
   the schedule itself and legitimately differ between worker counts. *)
let identity_snapshot () =
  Ir_obs.filter_out ~prefix:"exec/sched/" (Ir_obs.snapshot ())

let experiment_table4 () =
  section
    (if quick then "E1-E4: Table 4 (QUICK mode; 130nm, 100k gates)"
     else "E1-E4: Table 4 (rank vs K, M, C, R; 130nm, 1M gates)");
  let config = sweep_config () in
  (* Each leg runs from a zeroed metrics registry so the two snapshots
     are comparable: outside the scheduler's own [exec/sched/] namespace
     every Ir_obs counter (and gauge) is a deterministic quantity, so
     jobs=1 and jobs=N must agree exactly — a cross-domain determinism
     check on the whole DP + packing stack, on top of the rank-identity
     check below. *)
  Ir_obs.reset ();
  let t0 = Ir_exec.now () in
  let seq = Ir_sweep.Table4.all ~jobs:1 ~config () in
  let seq_s = Ir_exec.now () -. t0 in
  let seq_snap = identity_snapshot () in
  let jobs = par_jobs () in
  let par_leg =
    (* On a single-core box the "parallel" leg would be the identical
       sequential execution run twice (the clamp takes effective jobs to
       1): its timing can only measure noise, and flagging noise as a
       parallel regression was a bug.  Skip the leg and report the skip. *)
    if Ir_exec.hardware_jobs () <= 1 then None
    else begin
      Ir_obs.reset ();
      let t0 = Ir_exec.now () in
      let sweeps = Ir_sweep.Table4.all ~jobs ~config () in
      let par_s = Ir_exec.now () -. t0 in
      Some (sweeps, par_s, identity_snapshot ())
    end
  in
  let sweeps =
    match par_leg with Some (sweeps, _, _) -> sweeps | None -> seq
  in
  List.iter
    (fun s ->
      Ir_sweep.Report.sweep_table s Format.std_formatter;
      Format.printf
        "correlation with published column: %.4f; max |measured - paper| = \
         %.4f@.@."
        (Ir_sweep.Report.correlation (Ir_sweep.Table4.normalized s)
           s.Ir_sweep.Table4.paper)
        (Ir_sweep.Report.max_abs_delta
           (Ir_sweep.Table4.normalized s)
           s.Ir_sweep.Table4.paper))
    sweeps;
  (match par_leg with
  | None ->
      Format.printf
        "@.table4 jobs=1: %.2f s.  Parallel leg skipped: single-core \
         hardware (hardware_jobs = 1) — rerunning identical work cannot \
         measure a speedup, and schema 6 reports \"skipped_single_core\" \
         instead of a false regression.@."
        seq_s
  | Some (par_sweeps, par_s, par_snap) ->
      let identical =
        List.for_all2 (fun a b -> sweep_sig a = sweep_sig b) seq par_sweeps
      in
      let counters_identical =
        seq_snap.Ir_obs.counters = par_snap.Ir_obs.counters
        && seq_snap.Ir_obs.gauges = par_snap.Ir_obs.gauges
      in
      (* Both legs run the same code on the same workload — the labels
         name only the worker count.  Per-phase spans are cumulative busy
         time across all domains of the leg, so the jobs=N row can exceed
         its own wall time. *)
      Ir_sweep.Report.table
        ~header:
          [ "table4 leg"; "wall time"; "speedup vs jobs=1";
            "rank_dp/build_tables"; "rank_dp/search"; "ranks identical" ]
        ~rows:
          [
            [
              "jobs=1"; Printf.sprintf "%.2f s" seq_s; "1.00x";
              phase_cell seq_snap "rank_dp/build_tables";
              phase_cell seq_snap "rank_dp/search"; "-";
            ];
            [
              Printf.sprintf "jobs=%d" jobs;
              Printf.sprintf "%.2f s" par_s;
              Printf.sprintf "%.2fx" (seq_s /. Float.max 1e-9 par_s);
              phase_cell par_snap "rank_dp/build_tables";
              phase_cell par_snap "rank_dp/search";
              (if identical then "yes" else "NO (BUG)");
            ];
          ]
        Format.std_formatter;
      if par_s > seq_s then
        Format.printf
          "@.*** WARNING: the jobs=%d leg (%.2f s) is SLOWER than jobs=1 \
           (%.2f s). ***@.*** Parallel execution is losing to its own \
           overhead on this machine/workload. ***@."
          jobs par_s seq_s;
      Ir_sweep.Report.table
        ~header:
          [ "counter"; "jobs=1"; Printf.sprintf "jobs=%d" jobs; "match" ]
        ~rows:
          (List.map
             (fun (name, v1) ->
               let vn = Ir_obs.find_counter par_snap name in
               [
                 name;
                 string_of_int v1;
                 (match vn with Some v -> string_of_int v | None -> "-");
                 (if vn = Some v1 then "yes" else "NO (BUG)");
               ])
             seq_snap.Ir_obs.counters
          @ List.map
              (fun (name, v1) ->
                let vn = Ir_obs.find_gauge par_snap name in
                [
                  name ^ " (gauge)";
                  string_of_int v1;
                  (match vn with Some v -> string_of_int v | None -> "-");
                  (if vn = Some v1 then "yes" else "NO (BUG)");
                ])
              seq_snap.Ir_obs.gauges)
        Format.std_formatter;
      if not identical then
        failwith "table4: parallel ranks differ from sequential ranks";
      if not counters_identical then
        failwith "table4: parallel counters/gauges differ from sequential");
  leg_results_line "table4";
  ( sweeps,
    (("table4_jobs1_seconds", seq_s)
    ::
    (match par_leg with
    | Some (_, par_s, _) ->
        [ (Printf.sprintf "table4_jobs%d_seconds" jobs, par_s) ]
    | None -> [])),
    (seq_s, Option.map (fun (_, par_s, _) -> par_s) par_leg) )

(* Worker counts for the scaling curve: every count up to 8, then powers
   of two, then the core count itself — dense where the knee usually
   lives, sparse where extra points just repeat the plateau. *)
let scaling_jobs_list hw =
  if hw <= 8 then List.init hw (fun i -> i + 1)
  else
    let rec pows acc p = if p >= hw then acc else pows (p :: acc) (2 * p) in
    List.sort_uniq compare ((hw :: List.init 8 (fun i -> i + 1)) @ pows [] 16)

let experiment_scaling () =
  section
    (Printf.sprintf "Scaling: table4 sweep at jobs = 1..%d"
       (Ir_exec.hardware_jobs ()));
  let config = sweep_config () in
  let hw = Ir_exec.hardware_jobs () in
  let jobs_list = scaling_jobs_list hw in
  (* One point per worker count, identical workload; every point is
     checked for full result identity (ranks + exact flags) and
     scheduler-filtered counter identity against the jobs=1 baseline.
     [with_pool_heap] holds the pool's raised minor heap across the whole
     burst so per-point Gc.set churn stays out of the timings. *)
  let baseline = ref None in
  let points =
    Ir_exec.with_pool_heap @@ fun () ->
    List.map
      (fun jobs ->
        Ir_obs.reset ();
        let t0 = Ir_exec.now () in
        let sweeps = Ir_sweep.Table4.all ~jobs ~config () in
        let dt = Ir_exec.now () -. t0 in
        let sigs = List.map sweep_sig sweeps in
        let snap = identity_snapshot () in
        (match !baseline with
        | None -> baseline := Some (sigs, snap)
        | Some (sigs1, snap1) ->
            if sigs <> sigs1 then
              failwith
                (Printf.sprintf
                   "scaling: jobs=%d ranks/exact flags differ from jobs=1"
                   jobs);
            if
              not
                (snap1.Ir_obs.counters = snap.Ir_obs.counters
                && snap1.Ir_obs.gauges = snap.Ir_obs.gauges)
            then
              failwith
                (Printf.sprintf
                   "scaling: jobs=%d counters/gauges differ from jobs=1" jobs));
        (jobs, dt))
      jobs_list
  in
  Ir_obs.reset ();
  let jobs1 = List.assoc 1 points in
  Ir_sweep.Report.table
    ~header:[ "jobs"; "wall time"; "speedup"; "parallel regression" ]
    ~rows:
      (List.map
         (fun (j, s) ->
           [
             string_of_int j;
             Printf.sprintf "%.2f s" s;
             Printf.sprintf "%.2fx" (jobs1 /. Float.max 1e-9 s);
             (if j = 1 then "-" else if s > jobs1 then "YES" else "no");
           ])
         points)
    Format.std_formatter;
  if hw <= 1 then
    Format.printf
      "@.Single-core hardware: only the jobs=1 point exists; the exported \
       scaling status is \"skipped_single_core\" rather than a false \
       regression.@."
  else
    Format.printf "@.All %d points rank- and counter-identical to jobs=1.@."
      (List.length points);
  leg_results_line "scaling";
  { Ir_sweep.Export.max_jobs = hw; points }

let experiment_figure2 () =
  section "E5: Figure 2 (suboptimality of greedy assignment)";
  let s = Ir_sweep.Figure2.scenario () in
  Format.printf "greedy top-down : %a   (paper: rank 2)@."
    Ir_core.Outcome.pp_human s.greedy;
  Format.printf "optimal DP      : %a   (paper: rank 4)@."
    Ir_core.Outcome.pp_human s.optimal;
  Format.printf "paper-literal DP: %a@." Ir_core.Outcome.pp_human s.exact

let experiment_headline () =
  section "E6: headline equivalence (38% K cut vs 42% Miller cut)";
  let r =
    Ir_sweep.Equivalence.matching_miller_reduction
      ~k_reduction:Ir_sweep.Paper_data.headline_k_reduction ()
  in
  Format.printf
    "K reduced 38%% (3.9 -> 2.42): rank %.6f@.Matching Miller reduction: \
     %.1f%% (rank %.6f); paper says 42.5%%.@."
    r.k_rank (100.0 *. r.m_reduction) r.m_rank

let experiment_cross_node () =
  section "E9: unreported cross-node baselines (Section 5.2)";
  let matrix =
    if quick then
      [
        (Ir_tech.Node.N180, 100_000);
        (Ir_tech.Node.N130, 100_000);
        (Ir_tech.Node.N90, 100_000);
      ]
    else
      [
        (Ir_tech.Node.N180, 1_000_000);
        (Ir_tech.Node.N130, 1_000_000);
        (Ir_tech.Node.N130, 4_000_000);
        (Ir_tech.Node.N90, 4_000_000);
        (Ir_tech.Node.N90, 10_000_000);
      ]
  in
  let cells = Ir_sweep.Cross_node.run ~matrix () in
  Ir_sweep.Report.cross_node_table cells Format.std_formatter;
  if not quick then begin
    (* A 10M-gate design does not fit the baseline 4-pair architecture at
       all (Definition 3, rank 0) — the paper's footnote 1 point that via
       blockage and wiring demand drive layer count.  The 90nm stack has
       the layers for a third semi-global pair; with it the design
       routes. *)
    Format.printf
      "@.Same 90nm/10M design with a third semi-global pair (8-layer \
       stack):@.";
    let structure =
      { Ir_ia.Arch.local_pairs = 1; semi_global_pairs = 3; global_pairs = 1 }
    in
    Ir_sweep.Report.cross_node_table
      (Ir_sweep.Cross_node.run ~structure
         ~matrix:[ (Ir_tech.Node.N90, 10_000_000) ] ())
      Format.std_formatter
  end;
  leg_results_line "cross_node";
  cells

(* Kernel microbenchmarks for the BENCH_sweeps.json "kernel" object:
   raw Front insert throughput (synthetic workload, deterministic LCG)
   and one timed phase-A [Rank_dp.build_tables] on the baseline
   instance.  Runs after the metrics snapshot is taken so its spans do
   not pollute the exported sweep metrics. *)
let kernel_bench () =
  section "Kernel micro-benchmark (flat Pareto front)";
  let module Front = Ir_core.Front in
  let cells = 512 and width = 8 in
  let inserts = if quick then 200_000 else 2_000_000 in
  let front = Front.create ~cells ~width in
  (* Deterministic 64-bit LCG (MMIX constants) — no Random state, so the
     workload is identical run to run. *)
  let seed = ref 0x9E3779B97F4A7C15L in
  let next () =
    seed := Int64.add (Int64.mul !seed 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.shift_right_logical !seed 17)
  in
  let t0 = Ir_exec.now () in
  for _ = 1 to inserts do
    let r = next () in
    let cell = r mod cells in
    let area = float_of_int ((r lsr 10) land 0xFFFF) in
    let count = (r lsr 26) land 0xFF in
    ignore
      (Front.insert front cell ~area ~count ~split:0 ~parent:(-1))
  done;
  let insert_s = Ir_exec.now () -. t0 in
  let per_insert_ns = insert_s *. 1e9 /. float_of_int inserts in
  let gates = if quick then 100_000 else 1_000_000 in
  let design = Ir_core.Rank.baseline_design ~gates Ir_tech.Node.N130 in
  let problem = Ir_core.Rank.problem_of_design design in
  let t0 = Ir_exec.now () in
  let tables = Ir_core.Rank_dp.build_tables problem in
  let build_s = Ir_exec.now () -. t0 in
  ignore (Sys.opaque_identity tables);
  Ir_sweep.Report.table
    ~header:[ "kernel benchmark"; "result" ]
    ~rows:
      [
        [
          Printf.sprintf "front/insert x%d (%d cells, width %d)" inserts
            cells width;
          Printf.sprintf "%.3f s total, %.0f ns/insert" insert_s
            per_insert_ns;
        ];
        [
          Printf.sprintf "rank_dp/build_tables (130nm, %d gates)" gates;
          Printf.sprintf "%.3f s" build_s;
        ];
      ]
    Format.std_formatter;
  leg_results_line "kernel";
  [
    ("front_insert_ns", per_insert_ns);
    ("build_tables_seconds", build_s);
  ]

(* Grid leg: the same Table-4 sweep through the historical per-point
   scheduler and through the Rank_grid wavefront, at the same worker
   count — the headline number of the grid engine — plus a perturb
   micro-leg showing incremental re-evaluation touches strictly fewer
   cells than a full rebuild.  The grid leg also reruns at jobs=1 to
   assert the grid/* counters (and the results) are schedule-invariant.
   Any identity violation fails the bench process; the speedup itself is
   reported honestly, never gated. *)
let grid_bench () =
  section "Grid leg: per-point vs one-wavefront grid (same jobs)";
  let config = sweep_config () in
  let jobs =
    if Ir_exec.hardware_jobs () <= 1 then 1 else par_jobs ()
  in
  Ir_obs.reset ();
  let t0 = Ir_exec.now () in
  let pp =
    Ir_sweep.Table4.all ~jobs ~engine:Ir_sweep.Table4.Per_point ~config ()
  in
  let pp_s = Ir_exec.now () -. t0 in
  Ir_obs.reset ();
  let t0 = Ir_exec.now () in
  let gr = Ir_sweep.Table4.all ~jobs ~engine:Ir_sweep.Table4.Grid ~config () in
  let grid_s = Ir_exec.now () -. t0 in
  let grid_snap = identity_snapshot () in
  let engines_identical =
    List.for_all2 (fun a b -> sweep_sig a = sweep_sig b) pp gr
  in
  (* The grid counters are structural (cells, planes, wavefront levels):
     a jobs=1 rerun must reproduce them — and the ranks — exactly. *)
  let counters_match, jobs1_identical =
    if jobs = 1 then (true, true)
    else begin
      Ir_obs.reset ();
      let gr1 =
        Ir_sweep.Table4.all ~jobs:1 ~engine:Ir_sweep.Table4.Grid ~config ()
      in
      let snap1 = identity_snapshot () in
      ( snap1.Ir_obs.counters = grid_snap.Ir_obs.counters
        && snap1.Ir_obs.gauges = grid_snap.Ir_obs.gauges,
        List.for_all2 (fun a b -> sweep_sig a = sweep_sig b) gr gr1 )
    end
  in
  let gcounter name =
    Option.value ~default:0 (Ir_obs.find_counter grid_snap name)
  in
  let points =
    List.fold_left
      (fun a (s : Ir_sweep.Table4.sweep) -> a + List.length s.rows)
      0 gr
  in
  (* cells_evaluated - cells_shared = planes actually built: every cell
     is either answered from a plane built for it or shared. *)
  let planes =
    gcounter "grid/cells_evaluated" - gcounter "grid/cells_shared"
  in
  (* Perturb micro-leg: a K x R micro grid built once, then one new K
     value perturbed in — only the new cell's (single-cell) slice is
     recomputed, never the other planes. *)
  Ir_obs.reset ();
  let micro_design = config.Ir_sweep.Table4.design in
  let base = Ir_core.Rank.problem_of_design micro_design in
  let micro_points =
    Array.of_list
      (List.concat_map
         (fun k ->
           List.map
             (fun f ->
               Ir_core.Rank_grid.point
                 ~materials:(Ir_ia.Materials.v ~k ())
                 ~fraction:f ())
             [ 0.2; 0.3; 0.4 ])
         [ 3.9; 3.3; 2.7 ])
  in
  let t0 = Ir_exec.now () in
  let micro = Ir_core.Rank_grid.evaluate ~jobs base micro_points in
  let full_eval_s = Ir_exec.now () -. t0 in
  let t0 = Ir_exec.now () in
  let changed =
    Ir_core.Rank_grid.perturb micro
      (Ir_core.Rank_grid.point
         ~materials:(Ir_ia.Materials.v ~k:2.1 ())
         ~fraction:0.3 ())
  in
  let perturb_s = Ir_exec.now () -. t0 in
  Ir_obs.reset ();
  let report =
    {
      Ir_sweep.Export.grid_points = points;
      grid_planes = planes;
      per_point_seconds = pp_s;
      grid_seconds = grid_s;
      grid_identical = engines_identical && jobs1_identical;
      grid_counters_match = counters_match;
      perturb_recomputed = Array.length changed;
      perturb_grid_cells = Ir_core.Rank_grid.cells micro;
      perturb_seconds = perturb_s;
      full_eval_seconds = full_eval_s;
    }
  in
  Ir_sweep.Report.table
    ~header:[ "grid leg"; "wall time"; "speedup" ]
    ~rows:
      [
        [ Printf.sprintf "per-point (jobs=%d)" jobs;
          Printf.sprintf "%.2f s" pp_s; "1.00x" ];
        [
          Printf.sprintf "grid wavefront (jobs=%d)" jobs;
          Printf.sprintf "%.2f s" grid_s;
          Printf.sprintf "%.2fx" (pp_s /. Float.max 1e-9 grid_s);
        ];
      ]
    Format.std_formatter;
  Format.printf
    "%d points over %d planes; perturb recomputed %d of %d cells (%.4f s \
     vs %.4f s full build); status %s@."
    points planes report.perturb_recomputed report.perturb_grid_cells
    perturb_s full_eval_s
    (Ir_sweep.Export.grid_status report);
  if grid_s > 1.05 *. pp_s then
    Format.printf
      "@.*** WARNING: the grid leg (%.2f s) is SLOWER than per-point \
       (%.2f s) on this machine/workload. ***@."
      grid_s pp_s;
  leg_results_line "grid";
  (match Ir_sweep.Export.grid_status report with
  | "ok" -> ()
  | status -> failwith ("grid leg: status " ^ status));
  report

(* Pruning leg: the Table-4 grid run twice at the same worker count —
   exact wavefront vs admissible-bound pruning (~prune:true) — asserting
   per-cell byte-identity at ε=0, then a jobs=1 pruned rerun asserting
   the bounds/* counters (and all other structural counters) are
   schedule-invariant.  The reduction in Front insertions and packer
   witness probes is the headline; wall clock is reported honestly
   either way.  Any identity violation fails the bench process. *)
let pruning_bench () =
  section "Pruning leg: exact wavefront vs admissible-bound pruning";
  let config = sweep_config () in
  let jobs =
    if Ir_exec.hardware_jobs () <= 1 then 1 else par_jobs ()
  in
  Ir_obs.reset ();
  let t0 = Ir_exec.now () in
  let base =
    Ir_sweep.Table4.all ~jobs ~engine:Ir_sweep.Table4.Grid ~config ()
  in
  let base_s = Ir_exec.now () -. t0 in
  let base_snap = identity_snapshot () in
  Ir_obs.reset ();
  let t0 = Ir_exec.now () in
  let pruned =
    Ir_sweep.Table4.all ~jobs ~engine:Ir_sweep.Table4.Grid ~prune:true
      ~config ()
  in
  let pruned_s = Ir_exec.now () -. t0 in
  let pruned_snap = identity_snapshot () in
  let identical =
    List.for_all2 (fun a b -> sweep_sig a = sweep_sig b) base pruned
  in
  (* The incumbent is only published at sequential barriers, so the
     bounds/* tallies — and every other structural counter of the pruned
     run — must not depend on the worker count. *)
  let counters_match, jobs1_identical =
    if jobs = 1 then (true, true)
    else begin
      Ir_obs.reset ();
      let pruned1 =
        Ir_sweep.Table4.all ~jobs:1 ~engine:Ir_sweep.Table4.Grid
          ~prune:true ~config ()
      in
      let snap1 = identity_snapshot () in
      ( snap1.Ir_obs.counters = pruned_snap.Ir_obs.counters
        && snap1.Ir_obs.gauges = pruned_snap.Ir_obs.gauges,
        List.for_all2 (fun a b -> sweep_sig a = sweep_sig b) pruned pruned1
      )
    end
  in
  Ir_obs.reset ();
  let counter snap name =
    Option.value ~default:0 (Ir_obs.find_counter snap name)
  in
  let points =
    List.fold_left
      (fun a (s : Ir_sweep.Table4.sweep) -> a + List.length s.rows)
      0 pruned
  in
  let report =
    {
      Ir_sweep.Export.pruning_points = points;
      baseline_seconds = base_s;
      pruned_seconds = pruned_s;
      front_inserts_baseline = counter base_snap "rank_dp/pareto_inserts";
      front_inserts_pruned = counter pruned_snap "rank_dp/pareto_inserts";
      witness_probes_baseline = counter base_snap "rank_dp/witness_probes";
      witness_probes_pruned = counter pruned_snap "rank_dp/witness_probes";
      states_pruned = counter pruned_snap "bounds/states_pruned";
      oracle_calls_saved = counter pruned_snap "bounds/oracle_calls_saved";
      incumbent_updates = counter pruned_snap "bounds/incumbent_updates";
      memo_preempted = counter pruned_snap "bounds/memo_preempted";
      pruning_identical = identical && jobs1_identical;
      pruning_counters_match = counters_match;
    }
  in
  let pct b p =
    if b <= 0 then "-"
    else Printf.sprintf "-%.1f%%" (100.0 *. float_of_int (b - p) /. float_of_int b)
  in
  Ir_sweep.Report.table
    ~header:[ "pruning leg"; "front inserts"; "witness probes"; "wall time" ]
    ~rows:
      [
        [
          Printf.sprintf "exact (jobs=%d)" jobs;
          string_of_int report.front_inserts_baseline;
          string_of_int report.witness_probes_baseline;
          Printf.sprintf "%.2f s" base_s;
        ];
        [
          Printf.sprintf "pruned (jobs=%d)" jobs;
          Printf.sprintf "%d (%s)" report.front_inserts_pruned
            (pct report.front_inserts_baseline report.front_inserts_pruned);
          Printf.sprintf "%d (%s)" report.witness_probes_pruned
            (pct report.witness_probes_baseline report.witness_probes_pruned);
          Printf.sprintf "%.2f s" pruned_s;
        ];
      ]
    Format.std_formatter;
  Format.printf
    "%d points: pruned %d states, saved %d oracle calls, %d incumbent      raises, %d memo preempts; status %s@."
    points report.states_pruned report.oracle_calls_saved
    report.incumbent_updates report.memo_preempted
    (Ir_sweep.Export.pruning_status report);
  if pruned_s > 1.05 *. base_s then
    Format.printf
      "@.*** WARNING: the pruned leg (%.2f s) is SLOWER than the exact        leg (%.2f s) on this machine/workload. ***@."
      pruned_s base_s;
  leg_results_line "pruning";
  (match Ir_sweep.Export.pruning_status report with
  | "ok" -> ()
  | status -> failwith ("pruning leg: status " ^ status));
  report

(* Power leg: the dual-budget subsystem's four contracts, CI-gated
   through the exported "power" status.  (a) The soundness anchor: the
   full Table-4 corpus run power-free and rerun with an explicitly
   threaded infinite power budget — at a deliberately non-default
   activity, so the power tables genuinely differ — must be
   byte-identical: every rank, every exact flag, every counter.  (b)
   The Power_pareto frontier evaluated at jobs=1 and jobs=N must return
   identical rows with identical power/* (and all other) counters.
   (c) The sequential (Rank_dp.compute_pareto_power) and grid
   (Rank_grid.compute_pareto_power) engines must agree point for point.
   (d) The frontier is monotone and its fraction-1.0 point recovers the
   unconstrained rank.  Any violation fails the bench process; the
   frontier's shape goes to power_pareto.csv, reported, never gated. *)
let power_bench () =
  section "Power leg: rank-vs-power frontier and the infinite-budget anchor";
  let config = sweep_config () in
  let jobs = if Ir_exec.hardware_jobs () <= 1 then 1 else par_jobs () in
  Ir_obs.reset ();
  let plain = Ir_sweep.Table4.all ~jobs ~config () in
  let plain_snap = identity_snapshot () in
  Ir_obs.reset ();
  let inf_config =
    {
      config with
      Ir_sweep.Table4.activity = 2.0 *. Ir_assign.Problem.default_activity;
      power_budget = infinity;
    }
  in
  let inf = Ir_sweep.Table4.all ~jobs ~config:inf_config () in
  let inf_snap = identity_snapshot () in
  let identity_ok =
    List.for_all2 (fun a b -> sweep_sig a = sweep_sig b) plain inf
    && plain_snap.Ir_obs.counters = inf_snap.Ir_obs.counters
    && plain_snap.Ir_obs.gauges = inf_snap.Ir_obs.gauges
  in
  (* Full-row frontier signature: fractions, budgets, ranks, exact
     flags and witness watts — jobs=1 and jobs=N must agree on all of
     it, and so must the two engines below. *)
  let frontier_sig (r : Ir_sweep.Power_pareto.result) =
    ( r.unconstrained.Ir_core.Outcome.rank_wires,
      r.unconstrained_power,
      List.map
        (fun (row : Ir_sweep.Power_pareto.row) ->
          ( row.fraction, row.budget,
            row.outcome.Ir_core.Outcome.rank_wires,
            row.outcome.Ir_core.Outcome.exact, row.power ))
        r.rows )
  in
  Ir_obs.reset ();
  let seq = Ir_sweep.Power_pareto.run ~jobs:1 ~config () in
  let seq_snap = identity_snapshot () in
  let counters_match =
    if jobs = 1 then true
    else begin
      Ir_obs.reset ();
      let par = Ir_sweep.Power_pareto.run ~jobs ~config () in
      let par_snap = identity_snapshot () in
      frontier_sig par = frontier_sig seq
      && par_snap.Ir_obs.counters = seq_snap.Ir_obs.counters
      && par_snap.Ir_obs.gauges = seq_snap.Ir_obs.gauges
    end
  in
  Ir_obs.reset ();
  (* Engine cross-check on outcomes only: the sequential engine chains
     a suffix-fit memo and boundary hints the concurrent one must not
     share, so its probe counters legitimately differ. *)
  let engines_agree =
    match seq.rows with
    | [] -> true
    | rows ->
        let base = Ir_sweep.Table4.baseline_problem config in
        let pts =
          Ir_power.Power.pareto base
            (List.map (fun (r : Ir_sweep.Power_pareto.row) -> r.budget) rows)
        in
        List.for_all2
          (fun (row : Ir_sweep.Power_pareto.row)
               (p : Ir_core.Rank_dp.power_point) ->
            p.pp_budget = row.budget
            && p.pp_outcome.Ir_core.Outcome.rank_wires
               = row.outcome.Ir_core.Outcome.rank_wires
            && p.pp_outcome.Ir_core.Outcome.exact
               = row.outcome.Ir_core.Outcome.exact
            && p.pp_power = row.power)
          rows pts
  in
  Ir_obs.reset ();
  let monotone = Ir_sweep.Power_pareto.monotone seq in
  let report =
    {
      Ir_sweep.Export.power_points = List.length seq.rows;
      unconstrained_power = seq.unconstrained_power;
      power_identity_ok = identity_ok;
      power_counters_match = counters_match;
      power_engines_agree = engines_agree;
      power_monotone = monotone;
      power_seconds = seq.seconds;
    }
  in
  Ir_sweep.Report.table
    ~header:
      [ "fraction"; "budget (W)"; "power (W)"; "rank (wires)"; "normalized" ]
    ~rows:
      (List.map
         (fun (r : Ir_sweep.Power_pareto.row) ->
           [
             Printf.sprintf "%.2f" r.fraction;
             Printf.sprintf "%.4g" r.budget;
             Printf.sprintf "%.4g" r.power;
             string_of_int r.outcome.Ir_core.Outcome.rank_wires;
             Printf.sprintf "%.6f" (Ir_core.Outcome.normalized r.outcome);
           ])
         seq.rows)
    Format.std_formatter;
  Format.printf
    "unconstrained: rank %d at %.4g W (activity %.2f); %d budget points in \
     %.2f s@.infinite-budget identity %s, jobs=1 vs jobs=%d %s, engines %s, \
     frontier %s; status %s@."
    seq.unconstrained.Ir_core.Outcome.rank_wires seq.unconstrained_power
    seq.activity (List.length seq.rows) seq.seconds
    (if identity_ok then "byte-identical" else "BROKEN")
    jobs
    (if counters_match then "identical" else "MISMATCH")
    (if engines_agree then "agree" else "DISAGREE")
    (if monotone then "monotone" else "NOT MONOTONE")
    (Ir_sweep.Export.power_status report);
  leg_results_line "power";
  (match Ir_sweep.Export.power_status report with
  | "ok" -> ()
  | status -> failwith ("power leg: status " ^ status));
  (report, seq)

(* Serving leg: replay a fixed query trace against an in-process rank
   server — fresh cache, fresh warm-table pool — once at jobs=1 and once
   at jobs=N, asserting the serve/serve_cache counter identity the rest
   of the harness asserts for the DP counters.  The trace visits each
   distinct query three times, so the steady-state hit rate is exactly
   2/3 and every counter is trace-determined.  Runs after the sweep
   metrics snapshot so its instruments never pollute the exported sweep
   metrics (and resets the registry on exit for the same reason). *)
let serving_bench () =
  section "Serving leg: replayed query trace against the rank service";
  let gates = if quick then 50_000 else 400_000 in
  let fractions =
    if quick then [ 0.3; 0.4; 0.5 ] else [ 0.2; 0.3; 0.4; 0.5; 0.6 ]
  in
  let nodes = if quick then [ "130nm" ] else [ "130nm"; "90nm" ] in
  let distinct =
    List.concat_map
      (fun node -> List.map (fun f -> (node, f)) fractions)
      nodes
  in
  let trace = distinct @ distinct @ distinct in
  let replay jobs =
    Ir_obs.reset ();
    Ir_exec.with_default_jobs (Some jobs) @@ fun () ->
    let cache =
      match Ir_serve.Cache.create ~capacity:64 () with
      | Ok c -> c
      | Error e -> failwith ("serving leg: " ^ e)
    in
    let server = Ir_serve.Server.create ~workers:2 ~cache () in
    let latencies =
      List.mapi
        (fun i (node, f) ->
          let q =
            Ir_serve.Protocol.query ~repeater_fraction:f ~node ~gates ()
          in
          let req =
            {
              Ir_serve.Protocol.id = Printf.sprintf "t%d" i;
              op = Ir_serve.Protocol.Query q;
            }
          in
          let t0 = Ir_exec.now () in
          let resp = Ir_serve.Server.handle server req in
          (match resp.Ir_serve.Protocol.body with
          | Ir_serve.Protocol.Result _ -> ()
          | Ir_serve.Protocol.Error e ->
              failwith
                ("serving leg: " ^ Ir_serve.Protocol.error_message e)
          | _ -> failwith "serving leg: unexpected response body");
          (Ir_exec.now () -. t0) *. 1e3)
        trace
    in
    Ir_serve.Server.shutdown server;
    Ir_serve.Server.join server;
    (Ir_obs.filter ~prefix:"serve" (Ir_obs.snapshot ()), latencies)
  in
  let snap1, lat1 = replay 1 in
  let snapn, _ = replay (par_jobs ()) in
  if
    not
      (snap1.Ir_obs.counters = snapn.Ir_obs.counters
      && snap1.Ir_obs.gauges = snapn.Ir_obs.gauges)
  then begin
    Format.printf "jobs=1 serving metrics:@.%a@." Ir_obs.pp_report snap1;
    Format.printf "jobs=N serving metrics:@.%a@." Ir_obs.pp_report snapn;
    failwith
      "serving leg: serve counters differ between jobs=1 and jobs=N replays"
  end;
  Ir_obs.reset ();
  let pct p =
    let arr = Array.of_list lat1 in
    Array.sort compare arr;
    let n = Array.length arr in
    arr.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let counter name =
    Option.value ~default:0 (Ir_obs.find_counter snap1 name)
  in
  let hits =
    counter "serve_cache/mem_hits" + counter "serve_cache/disk_hits"
  in
  let misses = counter "serve_cache/misses" in
  let report =
    {
      Ir_sweep.Export.trace_requests = List.length trace;
      distinct_queries = List.length distinct;
      hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses));
      p50_ms = pct 0.50;
      p95_ms = pct 0.95;
      p99_ms = pct 0.99;
      computes = counter "serve/computes";
      table_builds = counter "serve/table_builds";
      counters_match = true;
    }
  in
  Format.printf
    "%d requests (%d distinct): hit rate %.2f, latency p50 %.1f / p95 %.1f \
     / p99 %.1f ms@.computes %d, warm-table builds %d, jobs=1 vs jobs=N \
     counters identical@."
    report.trace_requests report.distinct_queries report.hit_rate
    report.p50_ms report.p95_ms report.p99_ms report.computes
    report.table_builds;
  leg_results_line "serving";
  report

(* Sharded serving leg: a real fleet — N forked [ia_rank serve] worker
   processes behind the in-process shard router on an ephemeral TCP port
   — under a zipf-skewed storm of concurrent client threads.  After the
   storm, every distinct query is re-asked through the router and
   compared byte-for-byte against a local cold compute, and each shard's
   [serve/table_builds] is collected: their sum must not exceed the
   number of distinct warm-table families, which is the family-affinity
   routing claim (no family built twice anywhere in the fleet).  Any
   violation fails the bench process, not just the exported status. *)
let serving_sharded_bench () =
  section "Sharded serving leg: TCP client storm against a shard fleet";
  let exe =
    let candidate =
      match Sys.getenv_opt "IA_RANK_EXE" with
      | Some p when p <> "" -> p
      | _ ->
          (* Relative to the bench binary inside _build/default. *)
          Filename.concat
            (Filename.dirname (Filename.dirname Sys.executable_name))
            (Filename.concat "bin" "ia_rank.exe")
    in
    if Sys.file_exists candidate then candidate
    else
      failwith
        (Printf.sprintf
           "sharded serving leg: ia_rank binary not found at %s (build \
            bin/ia_rank.exe or set IA_RANK_EXE)"
           candidate)
  in
  let shards = if quick then 2 else 4 in
  let clients = if quick then 32 else 1000 in
  let per_client = if quick then 6 else 10 in
  let gates_list = if quick then [ 50_000 ] else [ 200_000; 400_000 ] in
  let fractions =
    if quick then [ 0.25; 0.3; 0.35; 0.4; 0.45; 0.5 ]
    else [ 0.2; 0.25; 0.3; 0.35; 0.4; 0.45; 0.5; 0.55; 0.6; 0.65; 0.7; 0.75 ]
  in
  let nodes = [ "130nm"; "90nm" ] in
  let distinct =
    List.concat_map
      (fun node ->
        List.concat_map
          (fun gates ->
            List.map
              (fun f ->
                Ir_serve.Protocol.query ~repeater_fraction:f ~node ~gates ())
              fractions
            (* One greedy query per (node, gates): exercises the cold
               path through the fleet without adding a table family. *)
            @ [
                Ir_serve.Protocol.query ~repeater_fraction:0.4 ~greedy:true
                  ~node ~gates ();
              ])
          gates_list)
      nodes
  in
  let fingerprints =
    List.map
      (fun q ->
        match Ir_serve.Protocol.fingerprint_of_query q with
        | Ok fp -> fp
        | Error e -> failwith ("sharded serving leg: bad query: " ^ e))
      distinct
  in
  let families =
    List.sort_uniq compare
      (List.filter_map
         (fun (fp : Ir_serve.Fingerprint.t) ->
           match fp.algo with
           | Ir_serve.Fingerprint.Dp -> Some (Ir_serve.Fingerprint.table_key fp)
           | Ir_serve.Fingerprint.Greedy -> None)
         fingerprints)
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ia-rank-sharded-bench-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter
          (fun name -> rm_rf (Filename.concat path name))
          (try Sys.readdir path with Sys_error _ -> [||]);
        (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
  in
  rm_rf dir;
  Ir_obs.reset ();
  let fleet =
    match
      Ir_serve.Shard.start ~workers:2 ~queue_capacity:128
        ~cache_dir:(Filename.concat dir "cache")
        ~snapshot_dir:(Filename.concat dir "snap")
        ~exe ~shards ~dir ()
    with
    | Ok f -> f
    | Error e -> failwith ("sharded serving leg: " ^ e)
  in
  let port_mu = Mutex.create () in
  let port = ref None in
  let serve_th =
    Thread.create
      (fun () ->
        match
          Ir_serve.Shard.serve fleet
            ~tcp:("127.0.0.1", 0)
            ~on_tcp_listen:(fun p ->
              Mutex.lock port_mu;
              port := Some p;
              Mutex.unlock port_mu)
            ()
        with
        | Ok () -> ()
        | Error e -> prerr_endline ("sharded serving leg: serve: " ^ e))
      ()
  in
  let rec await_port n =
    let p =
      Mutex.lock port_mu;
      let p = !port in
      Mutex.unlock port_mu;
      p
    in
    match p with
    | Some p -> p
    | None ->
        if n > 500 then failwith "sharded serving leg: router did not come up"
        else begin
          Thread.delay 0.02;
          await_port (n + 1)
        end
  in
  let tcp_port = await_port 0 in
  (* Zipf-skewed query mix (s ~ 1.1) over the distinct corpus, sampled
     through a per-client deterministic LCG: a few hot families absorb
     most of the traffic — the regime coalescing and the warm pool are
     built for — while the tail still touches every query. *)
  let queries = Array.of_list distinct in
  let zipf_cum =
    let n = Array.length queries in
    let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) 1.1) in
    let c = Array.make n 0.0 in
    let total = ref 0.0 in
    Array.iteri
      (fun i wi ->
        total := !total +. wi;
        c.(i) <- !total)
      w;
    Array.map (fun x -> x /. !total) c
  in
  let pick u =
    let n = Array.length zipf_cum in
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if zipf_cum.(mid) < u then bisect (mid + 1) hi else bisect lo mid
    in
    queries.(bisect 0 (n - 1))
  in
  let agg_mu = Mutex.create () in
  let all_latencies = ref [] in
  let sheds = ref 0 in
  let failures = ref [] in
  let storm_requests = clients * per_client in
  let client_thread ci () =
    let seed = ref ((ci + 1) * 2654435761) in
    let next_u () =
      seed := ((!seed * 25214903917) + 11) land max_int;
      float_of_int (!seed land 0xFFFFFF) /. float_of_int 0x1000000
    in
    match Ir_serve.Client.connect_tcp ~host:"127.0.0.1" ~port:tcp_port with
    | Error e ->
        Mutex.lock agg_mu;
        failures := ("connect: " ^ e) :: !failures;
        Mutex.unlock agg_mu
    | Ok c ->
        Fun.protect ~finally:(fun () -> Ir_serve.Client.close c) @@ fun () ->
        for _ = 1 to per_client do
          let q = pick (next_u ()) in
          let t0 = Ir_exec.now () in
          let r = Ir_serve.Client.request c (Ir_serve.Protocol.Query q) in
          let dt = (Ir_exec.now () -. t0) *. 1e3 in
          Mutex.lock agg_mu;
          (match r with
          | Ok (Ir_serve.Protocol.Result _) ->
              all_latencies := dt :: !all_latencies
          | Ok (Ir_serve.Protocol.Error Ir_serve.Protocol.Overloaded) ->
              incr sheds
          | Ok (Ir_serve.Protocol.Error e) ->
              failures := Ir_serve.Protocol.error_message e :: !failures
          | Ok _ -> failures := "unexpected response body" :: !failures
          | Error e -> failures := e :: !failures);
          Mutex.unlock agg_mu
        done
  in
  let storm_threads =
    List.init clients (fun ci -> Thread.create (client_thread ci) ())
  in
  List.iter Thread.join storm_threads;
  (match !failures with
  | [] -> ()
  | e :: _ ->
      failwith
        (Printf.sprintf "sharded serving leg: %d storm failures (first: %s)"
           (List.length !failures) e));
  (* Post-storm byte-identity: every distinct query through the router
     must equal a local cold compute, byte for byte. *)
  let byte_identical =
    match Ir_serve.Client.connect_tcp ~host:"127.0.0.1" ~port:tcp_port with
    | Error e -> failwith ("sharded serving leg: verify connect: " ^ e)
    | Ok c ->
        Fun.protect ~finally:(fun () -> Ir_serve.Client.close c) @@ fun () ->
        List.for_all2
          (fun q fp ->
            match Ir_serve.Client.request c (Ir_serve.Protocol.Query q) with
            | Ok (Ir_serve.Protocol.Result { payload; _ }) ->
                payload
                = Ir_serve.Protocol.result_payload
                    (Ir_serve.Fingerprint.compute_cold fp)
            | _ -> false)
          distinct fingerprints
  in
  (* Fleet-wide rates through the router's aggregated stats; per-shard
     build counts straight from each shard's own socket. *)
  let router_stats =
    match Ir_serve.Client.connect_tcp ~host:"127.0.0.1" ~port:tcp_port with
    | Error e -> failwith ("sharded serving leg: stats connect: " ^ e)
    | Ok c ->
        Fun.protect ~finally:(fun () -> Ir_serve.Client.close c) @@ fun () ->
        (match Ir_serve.Client.stats c with
        | Ok kvs -> kvs
        | Error e -> failwith ("sharded serving leg: stats: " ^ e))
  in
  let stat kvs name = Option.value ~default:0 (List.assoc_opt name kvs) in
  let builds_per_shard =
    Array.to_list
      (Array.map
         (fun socket ->
           match Ir_serve.Client.connect ~socket with
           | Error e ->
               failwith ("sharded serving leg: shard stats: " ^ e)
           | Ok c ->
               Fun.protect ~finally:(fun () -> Ir_serve.Client.close c)
               @@ fun () ->
               (match Ir_serve.Client.stats c with
               | Ok kvs -> stat kvs "serve/table_builds"
               | Error e ->
                   failwith ("sharded serving leg: shard stats: " ^ e)))
         (Ir_serve.Shard.shard_sockets fleet))
  in
  Ir_serve.Shard.shutdown fleet;
  (try Thread.join serve_th with _ -> ());
  rm_rf dir;
  let latencies = Array.of_list !all_latencies in
  Array.sort compare latencies;
  let pct p =
    let n = Array.length latencies in
    if n = 0 then 0.0
    else latencies.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let report =
    {
      Ir_sweep.Export.shards;
      clients;
      storm_requests;
      distinct_families = List.length families;
      sh_distinct_queries = List.length distinct;
      sh_p50_ms = pct 0.50;
      sh_p95_ms = pct 0.95;
      sh_p99_ms = pct 0.99;
      shed_rate = float_of_int !sheds /. float_of_int (max 1 storm_requests);
      coalesce_rate =
        float_of_int (stat router_stats "serve/coalesced")
        /. float_of_int (max 1 (stat router_stats "serve/requests"));
      table_builds_per_shard = builds_per_shard;
      byte_identical;
    }
  in
  Ir_obs.reset ();
  Format.printf
    "%d shards, %d clients x %d requests (%d distinct, %d families): \
     latency p50 %.1f / p95 %.1f / p99 %.1f ms@.shed rate %.3f, coalesce \
     rate %.3f, table builds per shard [%s], byte-identical %b@."
    shards clients per_client report.sh_distinct_queries
    report.distinct_families report.sh_p50_ms report.sh_p95_ms
    report.sh_p99_ms report.shed_rate report.coalesce_rate
    (String.concat "; " (List.map string_of_int builds_per_shard))
    byte_identical;
  if not byte_identical then
    failwith
      "sharded serving leg: sharded answers are not byte-identical to local \
       cold computes";
  if List.fold_left ( + ) 0 builds_per_shard > List.length families then
    failwith
      "sharded serving leg: some warm-table family was built by more than \
       one shard (family-affinity routing broken)";
  leg_results_line "serving_sharded";
  report

let experiment_runtime_claim () =
  section "E8: runtime claim (paper: < 200 s per rank on a 2003 Xeon)";
  let rows =
    List.map
      (fun gates ->
        let design = Ir_core.Rank.baseline_design ~gates Ir_tech.Node.N130 in
        let problem = Ir_core.Rank.problem_of_design design in
        let t0 = Sys.time () in
        let o = Ir_core.Rank_dp.compute problem in
        let dt = Sys.time () -. t0 in
        [
          string_of_int gates;
          string_of_int (Ir_assign.Problem.n_bunches problem);
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          (if o.assignable then "yes" else "no (rank 0)");
          Printf.sprintf "%.3f s" dt;
        ])
      [ 100_000; 1_000_000; 4_000_000; 10_000_000 ]
  in
  Ir_sweep.Report.table
    ~header:
      [ "gates"; "bunches"; "normalized rank"; "assignable"; "rank time" ]
    ~rows Format.std_formatter

(* ---------------------------------------------------------------------- *)
(* Part 2: ablations                                                       *)
(* ---------------------------------------------------------------------- *)

let baseline_problem ?(bunch_size = 10000) ?materials () =
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let arch = Ir_ia.Arch.make ?materials ~design () in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.gates ~rent_p:design.rent_p
         ~fan_out:design.fan_out ())
  in
  Ir_assign.Problem.make ~bunch_size ~arch ~wld ()

let ablation_bunch_size () =
  section "Ablation: WLD bunch size (paper Section 5.1, error <= bunch size)";
  let rows =
    List.map
      (fun bunch_size ->
        let problem = baseline_problem ~bunch_size () in
        let t0 = Sys.time () in
        let o = Ir_core.Rank_dp.compute problem in
        let dt = Sys.time () -. t0 in
        [
          string_of_int bunch_size;
          string_of_int (Ir_assign.Problem.n_bunches problem);
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          string_of_int o.rank_wires;
          Printf.sprintf "%.3f s" dt;
        ])
      [ 40_000; 20_000; 10_000; 5_000; 2_000; 1_000 ]
  in
  Ir_sweep.Report.table
    ~header:[ "bunch size"; "bunches"; "normalized"; "rank (wires)"; "time" ]
    ~rows Format.std_formatter;
  Format.printf
    "@.(The paper runs bunch size 10000; rank changes stay within one \
     bunch, as Section 5.1 argues.)@."

let ablation_binning () =
  section "Ablation: binning (footnote 7) on top of bunching";
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let arch = Ir_ia.Arch.make ~design () in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.gates ~rent_p:design.rent_p
         ~fan_out:design.fan_out ())
  in
  let rows =
    List.map
      (fun group ->
        let coarse = if group = 1 then wld else Ir_wld.Coarsen.bin ~group wld in
        let problem = Ir_assign.Problem.make ~arch ~wld:coarse () in
        let t0 = Sys.time () in
        let o = Ir_core.Rank_dp.compute problem in
        let dt = Sys.time () -. t0 in
        [
          string_of_int group;
          string_of_int (Ir_assign.Problem.n_bunches problem);
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          Printf.sprintf "%.3f s" dt;
        ])
      [ 1; 2; 4; 8 ]
  in
  Ir_sweep.Report.table
    ~header:[ "bin group"; "bunches"; "normalized"; "time" ]
    ~rows Format.std_formatter

let ablation_cap_model () =
  section "Ablation: capacitance model (the paper implies coupling-only)";
  let rows =
    List.map
      (fun (name, model) ->
        let materials = Ir_ia.Materials.v ~cap_model:model () in
        let problem = baseline_problem ~materials () in
        let o = Ir_core.Rank_dp.compute problem in
        let m1 =
          let mat = Ir_ia.Materials.v ~cap_model:model ~miller:1.0 () in
          Ir_core.Rank_dp.compute (baseline_problem ~materials:mat ())
        in
        [
          name;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized m1);
          Printf.sprintf "%.4f"
            (Ir_core.Outcome.normalized m1 /. Ir_core.Outcome.normalized o);
        ])
      [
        ("coupling-only (paper)", Ir_rc.Capacitance.Coupling_only);
        ("sakurai", Ir_rc.Capacitance.Sakurai);
        ("plate+fringe", Ir_rc.Capacitance.Parallel_plate_fringe);
        ("parallel plate", Ir_rc.Capacitance.Parallel_plate);
      ]
  in
  Ir_sweep.Report.table
    ~header:[ "model"; "rank @ M=2"; "rank @ M=1"; "M-sensitivity" ]
    ~rows Format.std_formatter;
  Format.printf
    "@.(The paper's M column requires rank(M=1)/rank(M=2) ~ 1.39 = \
     sqrt(2); only the coupling-only model delivers it.)@."

let ablation_greedy_gap () =
  section "Ablation: DP optimality gain over greedy (full baseline)";
  let problem = baseline_problem () in
  let dp = Ir_core.Rank_dp.compute problem in
  let g = Ir_core.Rank_greedy.compute problem in
  Format.printf "optimal DP : %a@." Ir_core.Outcome.pp_human dp;
  Format.printf "greedy     : %a@." Ir_core.Outcome.pp_human g;
  Format.printf "gap        : %d wires (%.2f%%)@."
    (dp.rank_wires - g.rank_wires)
    (100.0
    *. float_of_int (dp.rank_wires - g.rank_wires)
    /. float_of_int (max 1 dp.rank_wires))

let ablation_pareto () =
  section "Ablation: Pareto-set width of the optimized DP";
  let problem = baseline_problem () in
  let rows =
    List.map
      (fun width ->
        let t0 = Sys.time () in
        (* Widening would retry every truncated width at a larger one,
           making all rows identical — this ablation wants the fixed-width
           behaviour. *)
        let o =
          Ir_core.Rank_dp.compute ~max_pareto:width ~widen_on_overflow:false
            problem
        in
        let dt = Sys.time () -. t0 in
        [
          string_of_int width;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          Printf.sprintf "%.3f s" dt;
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Ir_sweep.Report.table ~header:[ "max pareto"; "normalized"; "time" ] ~rows
    Format.std_formatter

let ablation_target_model () =
  section "Ablation: target-delay requirement model (paper Section 6)";
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let rows =
    List.map
      (fun (name, model) ->
        let o = Ir_core.Rank.of_design ~target_model:model design in
        [ name; Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o) ])
      [
        ("linear (paper)", Ir_delay.Target.Linear);
        ("affine, 50ps floor", Ir_delay.Target.Affine { floor = 50e-12 });
        ( "quadratic blend 0.5",
          Ir_delay.Target.Quadratic_blend { weight = 0.5 } );
        ("fully quadratic", Ir_delay.Target.Quadratic_blend { weight = 1.0 });
      ]
  in
  Ir_sweep.Report.table ~header:[ "target model"; "normalized" ] ~rows
    Format.std_formatter

let ablation_via_model () =
  section "Ablation: via-blockage model (pad vs Chen-Davis-Meindl track)";
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.gates ~rent_p:design.rent_p
         ~fan_out:design.fan_out ())
  in
  let rows =
    List.map
      (fun (name, via_model) ->
        let arch = Ir_ia.Arch.make ~via_model ~design () in
        let problem = Ir_assign.Problem.make ~arch ~wld () in
        let o = Ir_core.Rank_dp.compute problem in
        [
          name;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          (if o.assignable then "yes" else "no");
        ])
      [ ("pad", Ir_ia.Via_model.Pad); ("track", Ir_ia.Via_model.Track) ]
  in
  Ir_sweep.Report.table ~header:[ "via model"; "normalized"; "assignable" ]
    ~rows Format.std_formatter;
  let g = (Ir_tech.Stack.of_node Ir_tech.Node.N130).semi_global in
  Format.printf "@.(Track model charges %.1fx the pad area per via on the 130nm Mx \
geometry.)@."
    (Ir_ia.Via_model.ratio g)

let comparison_algorithms () =
  section "Comparison: assignment policies on the full baseline";
  let problem = baseline_problem () in
  let rows =
    List.map
      (fun (name, f) ->
        let t0 = Sys.time () in
        let o : Ir_core.Outcome.t = f problem in
        let dt = Sys.time () -. t0 in
        [
          name;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized o);
          string_of_int o.rank_wires;
          Printf.sprintf "%.3f s" dt;
        ])
      [
        ("optimal DP (the metric)", fun p -> Ir_core.Rank_dp.compute p);
        ("greedy top-down (Fig. 2)", Ir_core.Rank_greedy.compute);
        ("length thresholds (SLIP'00)", fun p -> Ir_core.Rank_threshold.compute p);
      ]
  in
  Ir_sweep.Report.table
    ~header:[ "policy"; "normalized"; "rank (wires)"; "time" ]
    ~rows Format.std_formatter

let comparison_ntier () =
  section "Comparison: n-tier generated architecture vs Table-3 stack";
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let rows =
    List.map
      (fun tiers ->
        let `Ntier n, `Baseline b =
          Ir_ext.Ntier.compare_with_baseline ~tiers design
        in
        [
          string_of_int tiers;
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized n);
          Printf.sprintf "%.6f" (Ir_core.Outcome.normalized b);
        ])
      [ 3; 4; 5 ]
  in
  Ir_sweep.Report.table
    ~header:[ "tiers"; "n-tier rank"; "Table-3 baseline rank" ]
    ~rows Format.std_formatter

let study_noise () =
  section "Extension: noise-aware rank (peak coupling noise budget)";
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let wld =
    Ir_wld.Davis.generate
      (Ir_wld.Davis.params ~gates:design.gates ~rent_p:design.rent_p
         ~fan_out:design.fan_out ())
  in
  let rank ?noise_limit miller =
    let arch =
      Ir_ia.Arch.make ~materials:(Ir_ia.Materials.v ~miller ()) ~design ()
    in
    Ir_core.Outcome.normalized
      (Ir_core.Rank_dp.compute
         (Ir_assign.Problem.make ?noise_limit ~arch ~wld ()))
  in
  let rows =
    List.map
      (fun (name, noise_limit) ->
        [
          name;
          Printf.sprintf "%.6f" (rank ?noise_limit 2.0);
          Printf.sprintf "%.6f" (rank ?noise_limit 1.0);
        ])
      [
        ("none", None); ("30% Vdd", Some 0.3); ("25% Vdd", Some 0.25);
        ("20% Vdd", Some 0.2);
      ]
  in
  Ir_sweep.Report.table
    ~header:[ "noise budget"; "rank (M=2)"; "rank (M=1, shielded)" ]
    ~rows Format.std_formatter;
  Format.printf
    "@.(Shielding — the paper's footnote 8 route to M=1 — also silences \
aggressors, so shielded architectures keep their rank under noise \
budgets that zero the unshielded ones.)@."

let study_layers () =
  section "Extension: minimum layer-pairs for assignability / rank targets";
  let report gates =
    let design = Ir_core.Rank.baseline_design ~gates Ir_tech.Node.N130 in
    (match Ir_ext.Layers.min_pairs_for_assignability design with
    | Ok (step, steps) ->
        Format.printf
          "%d gates: WLD fits from %d sg + %d gl pairs (%d structures tried)@."
          gates step.structure.Ir_ia.Arch.semi_global_pairs
          step.structure.Ir_ia.Arch.global_pairs (List.length steps)
    | Error e -> Format.printf "%d gates: %s@." gates e);
    match Ir_ext.Layers.min_pairs_for_rank ~target:0.35 design with
    | Ok (step, _) ->
        Format.printf
          "%d gates: rank 0.35 needs %d sg + %d gl pairs (got %.4f)@." gates
          step.structure.Ir_ia.Arch.semi_global_pairs
          step.structure.Ir_ia.Arch.global_pairs
          (Ir_core.Outcome.normalized step.outcome)
    | Error e -> Format.printf "%d gates: rank 0.35: %s@." gates e
  in
  report 1_000_000;
  report 4_000_000

let study_anneal () =
  section "Extension: annealed direct optimization (Section 6, continuous)";
  let rows =
    List.map
      (fun ghz ->
        let design =
          Ir_tech.Design.v ~node:Ir_tech.Node.N130 ~gates:200_000
            ~clock:(ghz *. 1e9) ()
        in
        let r = Ir_ext.Anneal.optimize ~steps:80 ~bunch_size:1000 design in
        [
          Printf.sprintf "%.1f GHz" ghz;
          Printf.sprintf "%.4f" (Ir_core.Outcome.normalized r.initial);
          Printf.sprintf "%.4f" (Ir_core.Outcome.normalized r.outcome);
        ])
      [ 0.5; 1.0; 1.5; 2.0 ]
  in
  Ir_sweep.Report.table
    ~header:[ "clock"; "Table-3 baseline"; "annealed geometry" ]
    ~rows Format.std_formatter;
  Format.printf
    "@.(At 0.5 GHz the metric alone rewards degenerate thin/sparse wiring \
     and annealing@.saturates rank 1.0 — the optimizer-side view of the \
     paper's co-optimization@.conclusion; see Ir_ext.Anneal's \
     documentation.)@."

let study_variation () =
  section "Extension: rank sensitivity to calibration uncertainty";
  let design = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let s = Ir_ext.Variation.run ~samples:25 design in
  Format.printf
    "5%% noise on k, Miller, rho, r_o, c_o (25 seeded draws):@.";
  Format.printf
    "nominal %.4f, mean %.4f, std %.4f, range [%.4f, %.4f]@." s.nominal
    s.mean s.std s.min s.max;
  Format.printf
    "(The Table 4 trends span ~0.1-0.18 of normalized rank; parameter \
     uncertainty@.of this magnitude moves the metric by far less.)@."

let study_netlist () =
  section "Extension: Davis WLD validated against synthetic placed circuits";
  let rows =
    List.map
      (fun gates ->
        let c = Ir_netlist.Circuit.generate ~gates () in
        let v = Ir_netlist.Extract.validate_against_davis c in
        [
          string_of_int v.gates;
          Printf.sprintf "%.2f" v.measured_mean;
          Printf.sprintf "%.2f" v.davis_mean;
          Printf.sprintf "%.4f" v.measured_tail;
          Printf.sprintf "%.4f" v.davis_tail;
        ])
      [ 16_384; 65_536; 262_144 ]
  in
  Ir_sweep.Report.table
    ~header:
      [ "gates"; "mean (measured)"; "mean (Davis)"; "tail (measured)";
        "tail (Davis)" ]
    ~rows Format.std_formatter;
  Format.printf
    "@.(Rent-rule synthetic circuits, hierarchy = placement, Manhattan \
     lengths; the@.closed form the paper adopts in footnote 2 tracks the \
     measured shape.)@."

let export_artifacts ?metrics ?kernel ?parallel ?scaling ?grid ?pruning
    ?power ?serving ?serving_sharded sweeps cells timings =
  section "Artifacts";
  let dir = results_dir () in
  (* Say where the artifacts land: quick runs write results-quick/ (kept
     out of git) so they can never clobber the committed full-workload
     results/. *)
  Format.printf "results directory: %s/%s@." dir
    (if quick then "  (quick mode; gitignored)" else "");
  (match Ir_sweep.Export.write_sweeps ~dir sweeps with
  | Ok paths -> List.iter (Format.printf "wrote %s@.") paths
  | Error e -> Format.printf "sweep export failed: %s@." e);
  (match Ir_sweep.Export.write_cross ~dir cells with
  | Ok path -> Format.printf "wrote %s@." path
  | Error e -> Format.printf "cross export failed: %s@." e);
  (match power with
  | None -> ()
  | Some (_, result) -> (
      match Ir_sweep.Export.write_power_pareto ~dir result with
      | Ok path -> Format.printf "wrote %s@." path
      | Error e -> Format.printf "power pareto export failed: %s@." e));
  (match
     (* [metrics] is the snapshot taken right after the sweep sections
        (parallel table4 leg plus cross-node), before the kernel
        microbenchmarks pollute the span registry. *)
     Ir_sweep.Export.write_bench_json ~dir ~jobs:(par_jobs ()) ~timings
       ?metrics ?kernel ?parallel ?scaling ?grid ?pruning
       ?power:(Option.map fst power) ?serving ?serving_sharded ~sweeps
       ~cross:cells ()
   with
  | Ok path -> Format.printf "wrote %s@." path
  | Error e -> Format.printf "bench json export failed: %s@." e);
  match
    Ir_sweep.Export.write_manifest ~dir
      ~entries:
        ([ ("source", "dune exec bench/main.exe") ]
        @ List.map
            (fun (s : Ir_sweep.Table4.sweep) ->
              ( "table4_" ^ String.lowercase_ascii s.name,
                Printf.sprintf "correlation %.4f vs published column"
                  (Ir_sweep.Report.correlation
                     (Ir_sweep.Table4.normalized s)
                     s.paper) ))
            sweeps
        @ (match grid with
          | None -> []
          | Some (g : Ir_sweep.Export.grid_report) ->
              [
                ( "grid",
                  Printf.sprintf
                    "status %s: per-point %.2f s vs grid %.2f s (%.2fx); \
                     perturb recomputed %d of %d cells"
                    (Ir_sweep.Export.grid_status g)
                    g.per_point_seconds g.grid_seconds
                    (g.per_point_seconds /. Float.max 1e-9 g.grid_seconds)
                    g.perturb_recomputed g.perturb_grid_cells );
              ])
        @ (match pruning with
          | None -> []
          | Some (p : Ir_sweep.Export.pruning_report) ->
              [
                ( "pruning",
                  Printf.sprintf
                    "status %s: front inserts %d -> %d, witness probes %d                      -> %d; exact %.2f s vs pruned %.2f s"
                    (Ir_sweep.Export.pruning_status p)
                    p.front_inserts_baseline p.front_inserts_pruned
                    p.witness_probes_baseline p.witness_probes_pruned
                    p.baseline_seconds p.pruned_seconds );
              ])
        @ (match power with
          | None -> []
          | Some ((p : Ir_sweep.Export.power_report), _) ->
              [
                ( "power",
                  Printf.sprintf
                    "status %s: %d budget points, unconstrained %.4g W, \
                     frontier in %.2f s"
                    (Ir_sweep.Export.power_status p)
                    p.power_points p.unconstrained_power p.power_seconds );
              ])
        @ (match serving with
          | None -> []
          | Some (s : Ir_sweep.Export.serving_report) ->
              [
                ( "serving",
                  Printf.sprintf
                    "%d requests (%d distinct): hit rate %.2f, p95 %.1f ms, \
                     counters %s"
                    s.trace_requests s.distinct_queries s.hit_rate s.p95_ms
                    (if s.counters_match then "jobs-identical" else "MISMATCH")
                );
              ])
        @
        match serving_sharded with
        | None -> []
        | Some (s : Ir_sweep.Export.serving_sharded_report) ->
            [
              ( "serving_sharded",
                Printf.sprintf
                  "%d shards, %d clients, %d requests: status %s, p95 %.1f \
                   ms, shed %.3f"
                  s.shards s.clients s.storm_requests
                  (Ir_sweep.Export.sharded_status s)
                  s.sh_p95_ms s.shed_rate );
            ])
  with
  | Ok path -> Format.printf "wrote %s@." path
  | Error e -> Format.printf "manifest export failed: %s@." e

(* ---------------------------------------------------------------------- *)
(* Part 3: Bechamel micro-benchmarks                                       *)
(* ---------------------------------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let small gates bunch_size =
    let design = Ir_core.Rank.baseline_design ~gates Ir_tech.Node.N130 in
    let arch = Ir_ia.Arch.make ~design () in
    let wld =
      Ir_wld.Davis.generate
        (Ir_wld.Davis.params ~gates ~rent_p:0.6 ~fan_out:3.0 ())
    in
    Ir_assign.Problem.make ~bunch_size ~arch ~wld ()
  in
  let p_small = small 100_000 2_000 in
  let p_full = small 1_000_000 10_000 in
  let design_1m = Ir_core.Rank.baseline_design Ir_tech.Node.N130 in
  let wld_params = Ir_wld.Davis.params ~gates:1_000_000 () in
  let arch_1m = Ir_ia.Arch.make ~design:design_1m () in
  let wld_1m = Ir_wld.Davis.generate wld_params in
  [
    Test.make ~name:"wld/davis-generate-1M"
      (Staged.stage (fun () -> ignore (Ir_wld.Davis.generate wld_params)));
    Test.make ~name:"problem/build-tables-1M"
      (Staged.stage (fun () ->
           ignore
             (Ir_assign.Problem.make ~bunch_size:10000 ~arch:arch_1m
                ~wld:wld_1m ())));
    Test.make ~name:"rank/dp-100k-gates"
      (Staged.stage (fun () -> ignore (Ir_core.Rank_dp.compute p_small)));
    Test.make ~name:"rank/dp-1M-gates"
      (Staged.stage (fun () -> ignore (Ir_core.Rank_dp.compute p_full)));
    Test.make ~name:"rank/greedy-1M-gates"
      (Staged.stage (fun () -> ignore (Ir_core.Rank_greedy.compute p_full)));
    Test.make ~name:"assign/greedy-fill-1M"
      (Staged.stage (fun () ->
           ignore
             (Ir_assign.Greedy_fill.fits p_full
                (Ir_assign.Greedy_fill.context ~from_bunch:0 ~top_pair:0 ()))));
  ]

let run_bechamel () =
  section "Micro-benchmarks (Bechamel; time per run)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"ia_rank" (bechamel_tests ()))
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let per_run =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | _ -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> r
          | None -> nan
        in
        ( name,
          [
            name;
            (if per_run > 1e9 then Printf.sprintf "%.3f s" (per_run /. 1e9)
             else if per_run > 1e6 then
               Printf.sprintf "%.3f ms" (per_run /. 1e6)
             else Printf.sprintf "%.0f ns" per_run);
            Printf.sprintf "%.4f" r2;
          ] )
        :: acc)
      results []
  in
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) rows |> List.map snd
  in
  Ir_sweep.Report.table ~header:[ "benchmark"; "time/run"; "r^2" ] ~rows
    Format.std_formatter

(* Section selector: `dune exec bench/main.exe` runs the full harness;
   `-- sweeps` runs only the sections that feed results/BENCH_sweeps.json
   (table4 before/after legs, cross-node, scaling curve, artifact
   export); `-- scaling` runs only the jobs=1..ncores scaling curve and
   exports it (the CI regression gate); `-- micro` runs only the
   Bechamel micro-benchmarks. *)
let () =
  let what =
    match Array.to_list Sys.argv with
    | [ _ ] -> `All
    | [ _; "sweeps" ] -> `Sweeps
    | [ _; "scaling" ] -> `Scaling
    | [ _; "micro" ] -> `Micro
    | _ ->
        prerr_endline "usage: main.exe [sweeps|scaling|micro]";
        exit 2
  in
  let t0 = Ir_exec.now () in
  (* The kernel object tracks the perf trajectory across PRs: the
     microbenchmarks, the cumulative phase-A build span of the parallel
     leg + cross-node (the snapshot taken before kernel_bench), and both
     table4 leg wall times. *)
  let kernel_entries metrics (seq_s, par_s) =
    (match Ir_obs.find_span metrics "rank_dp/build_tables" with
    | Some { Ir_obs.seconds; _ } -> [ ("span_build_tables_seconds", seconds) ]
    | None -> [])
    @ [ ("table4_jobs1_seconds", seq_s) ]
    @
    match par_s with
    | Some par_s -> [ ("table4_jobsN_seconds", par_s) ]
    | None -> []
  in
  let parallel_report (seq_s, par_s) =
    {
      Ir_sweep.Export.requested_jobs = par_jobs ();
      effective_jobs = min (par_jobs ()) (Ir_exec.hardware_jobs ());
      jobs1_seconds = seq_s;
      jobsn_seconds = par_s;
    }
  in
  (match what with
  | `Micro -> run_bechamel ()
  | `Scaling ->
      let scaling = experiment_scaling () in
      let timings =
        List.map
          (fun (j, s) -> (Printf.sprintf "scaling_jobs%d_seconds" j, s))
          scaling.Ir_sweep.Export.points
      in
      export_artifacts ~scaling [] [] timings
  | `Sweeps ->
      let sweeps, timings, legs = experiment_table4 () in
      let cells = experiment_cross_node () in
      let metrics = Ir_obs.snapshot () in
      let scaling = experiment_scaling () in
      let grid = grid_bench () in
      let pruning = pruning_bench () in
      let power = power_bench () in
      let serving = serving_bench () in
      let serving_sharded = serving_sharded_bench () in
      let kernel = kernel_bench () @ kernel_entries metrics legs in
      export_artifacts ~metrics ~kernel
        ~parallel:(parallel_report legs)
        ~scaling ~grid ~pruning ~power ~serving ~serving_sharded sweeps
        cells timings
  | `All ->
      experiment_tables ();
      let sweeps, timings, legs = experiment_table4 () in
      experiment_figure2 ();
      experiment_headline ();
      let cells = experiment_cross_node () in
      let metrics = Ir_obs.snapshot () in
      let scaling = experiment_scaling () in
      experiment_runtime_claim ();
      ablation_bunch_size ();
      ablation_binning ();
      ablation_cap_model ();
      ablation_greedy_gap ();
      ablation_pareto ();
      ablation_target_model ();
      ablation_via_model ();
      comparison_algorithms ();
      comparison_ntier ();
      study_noise ();
      study_layers ();
      study_anneal ();
      study_variation ();
      study_netlist ();
      let grid = grid_bench () in
      let pruning = pruning_bench () in
      let power = power_bench () in
      let serving = serving_bench () in
      let serving_sharded = serving_sharded_bench () in
      let kernel = kernel_bench () @ kernel_entries metrics legs in
      export_artifacts ~metrics ~kernel
        ~parallel:(parallel_report legs)
        ~scaling ~grid ~pruning ~power ~serving ~serving_sharded sweeps
        cells timings;
      run_bechamel ());
  Format.printf "@.total harness wall time: %.1f s@." (Ir_exec.now () -. t0)
