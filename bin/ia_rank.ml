(* ia_rank: command-line front end for the interconnect-architecture rank
   metric (Dasgupta/Kahng/Muddu, DATE 2003).

   Subcommands:
     rank       compute the rank of one architecture/design combination
     table4     regenerate the paper's Table 4 sweeps (K/M/C/R)
     cross      baseline ranks across nodes and design sizes
     figure2    the greedy-vs-optimal counterexample
     tables     print the paper's Table 2/3 parameter tables
     optimize   direct IA optimization by rank (Section 6 future work)
     serve      rank query daemon (unix socket or stdio)
     query      client for a running serve daemon

   Exit codes: 0 success, 1 operational error (I/O, protocol, invalid
   input), 2 domain verdicts (unassignable design, no sufficient
   structure); cmdliner itself answers malformed command lines (unknown
   node, unparsable flag, unknown subcommand) with its documented 124.
   Every error path must land on a non-zero exit — [guard]
   below converts stray exceptions from library code into a clean
   message and exit 1 instead of a backtrace. *)

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

(* ---- shared arguments ------------------------------------------------- *)

let node_arg =
  let parse s =
    match Ir_tech.Node.of_string s with
    | Some n -> Ok n
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown node %S (use 180nm, 130nm, 90nm, or any feature \
                size such as 65nm for a scaled custom node)"
               s))
  in
  let print ppf n = Format.pp_print_string ppf (Ir_tech.Node.name n) in
  Arg.conv (parse, print)

let node =
  Arg.(
    value
    & opt node_arg Ir_tech.Node.N130
    & info [ "n"; "node" ] ~docv:"NODE"
        ~doc:
          "Technology node: $(b,180nm), $(b,130nm) or $(b,90nm) use the \
           paper's Table 3 stacks; any other feature size (e.g. \
           $(b,65nm)) builds a custom node with ITRS-trend-scaled \
           parameters.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel sweeps and grids (also the \
           $(b,IA_RANK_JOBS) environment variable; default: hardware \
           parallelism minus one).  $(b,-j 1) forces sequential \
           execution; results are identical either way.")

let set_jobs jobs = Ir_exec.set_default_jobs jobs

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print the metrics report — event counters and cumulative span \
           timers (see lib/obs) — to standard error when the command \
           finishes.  Also enabled by $(b,IA_RANK_STATS=1).  Counters are \
           deterministic: the same command prints the same counts at any \
           $(b,-j).")

let env_stats () =
  match Sys.getenv_opt "IA_RANK_STATS" with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" -> true
      | _ -> false)
  | None -> false

(* To stderr so it composes with --csv/redirected stdout. *)
let print_stats enabled =
  if enabled || env_stats () then
    Format.eprintf "%a@." Ir_obs.pp_report (Ir_obs.snapshot ())

let gates =
  Arg.(
    value
    & opt int 1_000_000
    & info [ "g"; "gates" ] ~docv:"N" ~doc:"Gate count of the design.")

let clock =
  Arg.(
    value
    & opt float 0.5
    & info [ "c"; "clock" ] ~docv:"GHZ" ~doc:"Target clock frequency in GHz.")

let fraction =
  Arg.(
    value
    & opt float 0.4
    & info [ "r"; "repeater-fraction" ] ~docv:"F"
        ~doc:"Usable repeater area as a fraction of the die.")

let permittivity =
  Arg.(
    value
    & opt float 3.9
    & info [ "k"; "permittivity" ] ~docv:"K" ~doc:"ILD relative permittivity.")

let miller =
  Arg.(
    value
    & opt float 2.0
    & info [ "m"; "miller" ] ~docv:"M" ~doc:"Miller coupling factor.")

let bunch_size =
  Arg.(
    value
    & opt int 10_000
    & info [ "bunch-size" ] ~docv:"B"
        ~doc:"WLD coarsening bunch size (the paper uses 10000).")

let activity_arg =
  Arg.(
    value
    & opt float Ir_assign.Problem.default_activity
    & info [ "activity" ] ~docv:"A"
        ~doc:
          "Switching activity factor of the repeater power model, in (0, \
           1] (default 0.15).  Only changes results under a finite \
           $(b,--power-budget).")

let power_budget_arg =
  Arg.(
    value
    & opt float infinity
    & info [ "power-budget" ] ~docv:"WATTS"
        ~doc:
          "Repeater power budget in watts ($(b,inf), the default, means \
           unconstrained — byte-identical to not having the flag).  A \
           finite budget runs the DP in power mode and requires the \
           $(b,dp) algorithm.")

let algo =
  let algo_conv =
    Arg.enum
      [ ("dp", Ir_core.Rank.Dp); ("greedy", Ir_core.Rank.Greedy);
        ("exact", Ir_core.Rank.Exact { r_steps = 16 }) ]
  in
  Arg.(
    value
    & opt algo_conv Ir_core.Rank.Dp
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"Rank algorithm: $(b,dp) (optimal), $(b,greedy) (Figure 2 \
              baseline) or $(b,exact) (paper-literal DP, tiny instances).")

let csv_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write results as CSV to $(docv).")

let design_of ~node ~gates ~clock ~fraction =
  Ir_tech.Design.v ~node ~gates ~clock:(clock *. 1e9)
    ~repeater_fraction:fraction ()

let fail fmt =
  Format.kasprintf
    (fun msg ->
      Format.eprintf "ia_rank: %s@." msg;
      exit 1)
    fmt

(* Wrap every subcommand body: library preconditions and I/O failures
   become a one-line message and exit 1 (Cmdliner's own catch-all would
   exit 125 with a backtrace, which scripts cannot distinguish from a
   crash). *)
let guard f =
  try f () with
  | Invalid_argument msg | Failure msg | Sys_error msg -> fail "%s" msg
  | Unix.Unix_error (e, fn, arg) ->
      fail "%s%s: %s" fn
        (if arg = "" then "" else " " ^ arg)
        (Unix.error_message e)

let write_csv path f =
  let buf = Buffer.create 1024 in
  f buf;
  match
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Buffer.contents buf))
  with
  | () -> Format.printf "wrote %s@." path
  | exception Sys_error msg -> fail "cannot write %s: %s" path msg

(* ---- rank ------------------------------------------------------------- *)

let rank_cmd =
  let run () jobs node gates clock fraction k m bunch_size algo activity
      power_budget stats =
    guard @@ fun () ->
    set_jobs jobs;
    if power_budget < infinity && algo <> Ir_core.Rank.Dp then
      fail "--power-budget requires the dp algorithm";
    let design = design_of ~node ~gates ~clock ~fraction in
    let materials = Ir_ia.Materials.v ~k ~miller:m () in
    let outcome =
      if
        power_budget < infinity
        || activity <> Ir_assign.Problem.default_activity
      then begin
        let problem =
          Ir_assign.Problem.with_activity
            (Ir_core.Rank.problem_of_design ~materials ~bunch_size design)
            activity
        in
        if power_budget < infinity then begin
          let problem =
            Ir_assign.Problem.with_power_budget problem power_budget
          in
          let outcome, w = Ir_core.Rank_dp.compute_with_witness problem in
          Format.printf "%a@." Ir_core.Outcome.pp_human outcome;
          Option.iter
            (fun w ->
              Format.printf "repeater power %.4g W of %.4g W budget@."
                (Ir_power.Power.of_witness problem w)
                power_budget)
            w;
          outcome
        end
        else begin
          let outcome = Ir_core.Rank.compute ~algo problem in
          Format.printf "%a@." Ir_core.Outcome.pp_human outcome;
          outcome
        end
      end
      else begin
        (* No power flag in play: the historical one-call path, so the
           flags' defaults provably cannot perturb existing behavior. *)
        let outcome =
          Ir_core.Rank.of_design ~algo ~materials ~bunch_size design
        in
        Format.printf "%a@." Ir_core.Outcome.pp_human outcome;
        outcome
      end
    in
    (* Before the unassignable exit, so --stats is never swallowed. *)
    print_stats stats;
    if not outcome.assignable then exit 2
  in
  let term =
    Term.(
      const run $ logs_term $ jobs $ node $ gates $ clock $ fraction
      $ permittivity $ miller $ bunch_size $ algo $ activity_arg
      $ power_budget_arg $ stats_flag)
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:"Compute the rank of an interconnect architecture for a design.")
    term

(* ---- table4 ----------------------------------------------------------- *)

let table4_cmd =
  let columns =
    Arg.(
      value
      & opt (list string) [ "K"; "M"; "C"; "R" ]
      & info [ "columns" ] ~docv:"COLS"
          ~doc:"Comma-separated subset of K,M,C,R.")
  in
  let run () jobs node gates bunch_size columns activity power_budget csv
      stats =
    guard @@ fun () ->
    set_jobs jobs;
    let design = Ir_core.Rank.baseline_design ~gates node in
    let config =
      {
        Ir_sweep.Table4.default_config with
        design;
        bunch_size;
        activity;
        power_budget;
      }
    in
    let wanted = List.map String.uppercase_ascii columns in
    let sweeps =
      List.filter_map
        (fun (name, f) -> if List.mem name wanted then Some (f ()) else None)
        [
          ("K", fun () -> Ir_sweep.Table4.k_sweep ~config ());
          ("M", fun () -> Ir_sweep.Table4.m_sweep ~config ());
          ("C", fun () -> Ir_sweep.Table4.c_sweep ~config ());
          ("R", fun () -> Ir_sweep.Table4.r_sweep ~config ());
        ]
    in
    List.iter
      (fun s ->
        Ir_sweep.Report.sweep_table s Format.std_formatter;
        Format.printf "correlation with paper: %.4f, max |delta|: %.4f@.@."
          (Ir_sweep.Report.correlation
             (Ir_sweep.Table4.normalized s)
             s.paper)
          (let m =
             List.filter_map
               (fun (p, v) ->
                 Option.map
                   (fun (_, pv) -> (v, pv))
                   (List.find_opt (fun (pp, _) -> Float.abs (pp -. p) < 1e-6) s.paper))
               (Ir_sweep.Table4.normalized s)
           in
           List.fold_left (fun a (x, y) -> Float.max a (Float.abs (x -. y))) 0.0 m))
      sweeps;
    Option.iter
      (fun path ->
        write_csv path (fun buf ->
            List.iter (fun s -> Ir_sweep.Report.sweep_csv s buf) sweeps))
      csv;
    print_stats stats
  in
  let term =
    Term.(
      const run $ logs_term $ jobs $ node $ gates $ bunch_size $ columns
      $ activity_arg $ power_budget_arg $ csv_out $ stats_flag)
  in
  Cmd.v
    (Cmd.info "table4" ~doc:"Regenerate the paper's Table 4 (K/M/C/R sweeps).")
    term

(* ---- power ------------------------------------------------------------- *)

let power_cmd =
  let fractions =
    let frac_list = Arg.(list float) in
    Arg.(
      value
      & opt (some frac_list) None
      & info [ "fractions" ] ~docv:"F1,F2,..."
          ~doc:
            "Power budgets to evaluate, as fractions in (0, 1] of the \
             unconstrained optimum's own repeater power (default: an \
             11-point grid denser below 0.5, where the frontier bends).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Also write the frontier as $(docv)/power_pareto.csv.")
  in
  let run () jobs node gates bunch_size activity fractions out stats =
    guard @@ fun () ->
    set_jobs jobs;
    let design = Ir_core.Rank.baseline_design ~gates node in
    let config =
      { Ir_sweep.Table4.default_config with design; bunch_size }
    in
    let r = Ir_sweep.Power_pareto.run ?fractions ~config ~activity () in
    Format.printf "area-only optimum: %a@." Ir_core.Outcome.pp_human
      r.Ir_sweep.Power_pareto.unconstrained;
    Format.printf "unconstrained repeater power: %.4g W (activity %.2f)@.@."
      r.Ir_sweep.Power_pareto.unconstrained_power
      r.Ir_sweep.Power_pareto.activity;
    if r.Ir_sweep.Power_pareto.rows = [] then
      Format.printf
        "no frontier: the baseline is unassignable or repeater-free@."
    else begin
      Format.printf "%-9s  %-11s  %-11s  %6s  %s@." "fraction" "budget(W)"
        "power(W)" "rank" "normalized";
      List.iter
        (fun (row : Ir_sweep.Power_pareto.row) ->
          Format.printf "%-9.2f  %-11.4g  %-11.4g  %6d  %.6f@."
            row.fraction row.budget row.power
            row.outcome.Ir_core.Outcome.rank_wires
            (Ir_core.Outcome.normalized row.outcome))
        r.Ir_sweep.Power_pareto.rows
    end;
    Option.iter
      (fun dir ->
        match Ir_sweep.Export.write_power_pareto ~dir r with
        | Ok path -> Format.printf "wrote %s@." path
        | Error e -> fail "cannot write power_pareto.csv: %s" e)
      out;
    print_stats stats
  in
  let term =
    Term.(
      const run $ logs_term $ jobs $ node $ gates $ bunch_size $ activity_arg
      $ fractions $ out $ stats_flag)
  in
  Cmd.v
    (Cmd.info "power"
       ~doc:
         "The rank-vs-power Pareto frontier: how much rank the baseline \
          keeps as the repeater power budget tightens (area budget held \
          fixed).")
    term

(* ---- cross ------------------------------------------------------------ *)

let cross_cmd =
  let run () jobs bunch_size stats =
    guard @@ fun () ->
    set_jobs jobs;
    let matrix =
      [
        (Ir_tech.Node.N180, 1_000_000); (Ir_tech.Node.N130, 1_000_000);
        (Ir_tech.Node.N130, 4_000_000); (Ir_tech.Node.N90, 4_000_000);
      ]
    in
    Ir_sweep.Report.cross_node_table
      (Ir_sweep.Cross_node.run ~bunch_size ~matrix ())
      Format.std_formatter;
    print_stats stats
  in
  Cmd.v
    (Cmd.info "cross" ~doc:"Baseline ranks across nodes and design sizes.")
    Term.(const run $ logs_term $ jobs $ bunch_size $ stats_flag)

(* ---- figure2 ---------------------------------------------------------- *)

let figure2_cmd =
  let run () =
    guard @@ fun () ->
    let s = Ir_sweep.Figure2.scenario () in
    Format.printf "greedy:  %a@." Ir_core.Outcome.pp_human s.greedy;
    Format.printf "optimal: %a@." Ir_core.Outcome.pp_human s.optimal;
    Format.printf "exact:   %a@." Ir_core.Outcome.pp_human s.exact
  in
  Cmd.v
    (Cmd.info "figure2"
       ~doc:"Reproduce the paper's Figure 2 greedy-vs-optimal counterexample.")
    Term.(const run $ logs_term)

(* ---- tables ----------------------------------------------------------- *)

let tables_cmd =
  let run () =
    List.iter
      (fun n ->
        Format.printf "%a@.@." Ir_tech.Stack.pp_table3
          (Ir_tech.Stack.of_node n))
      [ Ir_tech.Node.N180; Ir_tech.Node.N130; Ir_tech.Node.N90 ];
    Format.printf
      "Baseline parameters (Table 2): k=3.9, Miller=2, repeater \
       fraction=0.4,@.2 semi-global + 1 global layer-pairs, 500 MHz.@."
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the paper's Table 2/3 parameter tables.")
    Term.(const run $ logs_term)

(* ---- assign ----------------------------------------------------------- *)

let assign_cmd =
  let run () node gates clock fraction k m bunch_size =
    guard @@ fun () ->
    let design = design_of ~node ~gates ~clock ~fraction in
    let materials = Ir_ia.Materials.v ~k ~miller:m () in
    let problem =
      Ir_core.Rank.problem_of_design ~materials ~bunch_size design
    in
    let a = Ir_core.Assignment.extract problem in
    let witness_ok =
      match Ir_core.Assignment.check problem a with
      | Ok () -> true
      | Error e ->
          Format.printf "WITNESS INVALID: %s@." e;
          false
    in
    Format.printf "%a@." (Ir_core.Assignment.pp_human problem) a;
    (* An invalid witness is an internal-consistency failure, not a
       result — scripts must see it in the exit status. *)
    if not witness_ok then exit 1
  in
  Cmd.v
    (Cmd.info "assign"
       ~doc:"Show the optimal wire assignment behind the rank (witness).")
    Term.(
      const run $ logs_term $ node $ gates $ clock $ fraction $ permittivity
      $ miller $ bunch_size)

(* ---- layers ----------------------------------------------------------- *)

let layers_cmd =
  let target =
    Arg.(
      value
      & opt (some float) None
      & info [ "target" ] ~docv:"RANK"
          ~doc:"Normalized rank target; default checks assignability only.")
  in
  let run () node gates bunch_size target =
    guard @@ fun () ->
    let design = Ir_core.Rank.baseline_design ~gates node in
    let result =
      match target with
      | None -> Ir_ext.Layers.min_pairs_for_assignability ~bunch_size design
      | Some t -> Ir_ext.Layers.min_pairs_for_rank ~bunch_size ~target:t design
    in
    match result with
    | Error e ->
        Format.printf "%s@." e;
        exit 2
    | Ok (first, steps) ->
        List.iter
          (fun (s : Ir_ext.Layers.step) ->
            Format.printf "%d local + %d semi-global + %d global: %a@."
              s.structure.Ir_ia.Arch.local_pairs
              s.structure.Ir_ia.Arch.semi_global_pairs
              s.structure.Ir_ia.Arch.global_pairs Ir_core.Outcome.pp_human
              s.outcome)
          steps;
        Format.printf "-> first sufficient: %d semi-global + %d global@."
          first.structure.Ir_ia.Arch.semi_global_pairs
          first.structure.Ir_ia.Arch.global_pairs
  in
  Cmd.v
    (Cmd.info "layers"
       ~doc:"Minimum layer-pairs for assignability or a rank target.")
    Term.(const run $ logs_term $ node $ gates $ bunch_size $ target)

(* ---- ntier ------------------------------------------------------------ *)

let ntier_cmd =
  let tiers =
    Arg.(
      value & opt int 4
      & info [ "tiers" ] ~docv:"N" ~doc:"Number of n-tier wiring tiers.")
  in
  let run () node gates bunch_size tiers =
    guard @@ fun () ->
    let design = Ir_core.Rank.baseline_design ~gates node in
    List.iter
      (fun (t : Ir_ext.Ntier.tier) ->
        Format.printf
          "%-12s pitch %.3f um, lengths [%.1f, %.1f] um, demand %.2f m@."
          (Ir_tech.Metal_class.to_string t.cls)
          (Ir_phys.Units.to_um (Ir_tech.Geometry.pitch t.geometry))
          (Ir_phys.Units.to_um t.l_min)
          (Ir_phys.Units.to_um t.l_max)
          t.demand)
      (Ir_ext.Ntier.design_tiers ~tiers design);
    let `Ntier n, `Baseline b =
      Ir_ext.Ntier.compare_with_baseline ~tiers ~bunch_size design
    in
    Format.printf "n-tier rank  : %a@." Ir_core.Outcome.pp_human n;
    Format.printf "baseline rank: %a@." Ir_core.Outcome.pp_human b
  in
  Cmd.v
    (Cmd.info "ntier"
       ~doc:"Generate an n-tier architecture and compare it by rank.")
    Term.(const run $ logs_term $ node $ gates $ bunch_size $ tiers)

(* ---- optimize --------------------------------------------------------- *)

let optimize_cmd =
  let anneal_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "anneal" ] ~docv:"STEPS"
          ~doc:"Also refine with simulated annealing for $(docv) steps.")
  in
  let run () jobs node gates clock fraction bunch_size anneal_steps stats =
    guard @@ fun () ->
    set_jobs jobs;
    let design = design_of ~node ~gates ~clock ~fraction in
    let best, all = Ir_ext.Optimizer.optimize ~bunch_size design in
    Format.printf "evaluated %d grid candidates@." (List.length all);
    Format.printf "best: %d semi-global + %d global pairs, pitch x%.2f, \
                   thickness x%.2f -> %a@."
      best.structure.Ir_ia.Arch.semi_global_pairs
      best.structure.Ir_ia.Arch.global_pairs best.pitch_scale
      best.thickness_scale Ir_core.Outcome.pp_human best.outcome;
    Option.iter
      (fun steps ->
        let r = Ir_ext.Anneal.optimize ~steps ~bunch_size design in
        Format.printf
          "annealed (%d evaluations, %d accepted): %a@." r.evaluations
          r.accepted Ir_core.Outcome.pp_human r.outcome)
      anneal_steps;
    print_stats stats
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Directly optimize the architecture by rank (Section 6).")
    Term.(
      const run $ logs_term $ jobs $ node $ gates $ clock $ fraction
      $ bunch_size $ anneal_steps $ stats_flag)

(* ---- wld -------------------------------------------------------------- *)

let wld_cmd =
  let rent =
    Arg.(
      value & opt float 0.6
      & info [ "rent" ] ~docv:"P" ~doc:"Rent exponent of the Davis WLD.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write the WLD as CSV to $(docv).")
  in
  let load =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FILE"
          ~doc:"Summarize a WLD loaded from $(docv) instead of generating \
                one.")
  in
  let run () gates rent save load =
    guard @@ fun () ->
    let wld =
      match load with
      | Some path -> (
          match Ir_wld.Io.load path with
          | Ok d -> d
          | Error e ->
              Format.eprintf "cannot load %s: %s@." path e;
              exit 1)
      | None ->
          Ir_wld.Davis.generate
            (Ir_wld.Davis.params ~rent_p:rent ~gates ())
    in
    let s = Ir_wld.Stats.summary wld in
    Format.printf
      "wires %d, mean %.2f, std %.2f, median %.1f, p90 %.1f, p99 %.1f, \
       max %.1f@.total wire length %.3g (same unit as lengths)@.@."
      s.total s.mean s.std s.median s.p90 s.p99 s.l_max s.total_length;
    Ir_wld.Stats.pp_histogram Format.std_formatter wld;
    Format.printf "@.";
    Option.iter
      (fun path ->
        match Ir_wld.Io.save path wld with
        | Ok () -> Format.printf "wrote %s@." path
        | Error e ->
            Format.eprintf "cannot save %s: %s@." path e;
            exit 1)
      save
  in
  Cmd.v
    (Cmd.info "wld"
       ~doc:"Generate, summarize, load or save wire length distributions.")
    Term.(const run $ logs_term $ gates $ rent $ save $ load)

(* ---- variation -------------------------------------------------------- *)

let variation_cmd =
  let samples =
    Arg.(
      value & opt int 25
      & info [ "samples" ] ~docv:"N" ~doc:"Monte-Carlo sample count.")
  in
  let sigma =
    Arg.(
      value & opt float 0.05
      & info [ "sigma" ] ~docv:"S"
          ~doc:"Relative standard deviation applied to every electrical \
                parameter.")
  in
  let run () node gates bunch_size samples sigma =
    guard @@ fun () ->
    let design = Ir_core.Rank.baseline_design ~gates node in
    let spec =
      { Ir_ext.Variation.sigma_k = sigma; sigma_miller = sigma;
        sigma_rho = sigma; sigma_device = sigma }
    in
    let s = Ir_ext.Variation.run ~spec ~samples ~bunch_size design in
    Format.printf
      "nominal %.6f@.mean %.6f  std %.6f  min %.6f  max %.6f  (%d samples)@."
      s.nominal s.mean s.std s.min s.max s.samples
  in
  Cmd.v
    (Cmd.info "variation"
       ~doc:"Rank sensitivity to electrical-parameter uncertainty.")
    Term.(const run $ logs_term $ node $ gates $ bunch_size $ samples $ sigma)

(* ---- serve ------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let tcp_conv =
  let parse s =
    let bad () =
      Error
        (`Msg
          (Printf.sprintf "invalid TCP endpoint %S (expected PORT or HOST:PORT)"
             s))
    in
    match String.rindex_opt s ':' with
    | None -> (
        match int_of_string_opt s with
        | Some p when p >= 0 && p < 65536 -> Ok ("127.0.0.1", p)
        | _ -> bad ())
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (host, p)
        | _ -> bad ())
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let tcp_arg =
  Arg.(
    value
    & opt (some tcp_conv) None
    & info [ "tcp" ] ~docv:"[HOST:]PORT"
        ~doc:
          "TCP endpoint (default host 127.0.0.1; port 0 picks an ephemeral \
           port, logged on startup).")

let serve_cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve one line-delimited session on stdin/stdout instead \
                of listening on a socket.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persist results under $(docv) (validated on read; survives \
                restarts).")
  in
  let cache_entries =
    Arg.(
      value & opt int 512
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"In-memory result cache capacity (LRU).")
  in
  let table_pool =
    Arg.(
      value & opt int 8
      & info [ "table-pool" ] ~docv:"N"
          ~doc:"Warm DP-table families kept resident (LRU).")
  in
  let queue_capacity =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Pending-request bound; requests beyond it are shed with a \
                retryable overloaded error.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Computation worker threads.")
  in
  let request_timeout =
    Arg.(
      value & opt float 300.
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-request deadline; a waiter past it receives a timeout \
                error while the computation still populates the cache.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard the daemon across $(docv) worker processes (forked from \
             this binary), partitioned by warm-table family so no family \
             is built twice.  With the default 1 everything runs in this \
             process.")
  in
  let snapshot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR"
          ~doc:
            "Persist built warm DP tables under $(docv) (checksummed, \
             validated on load); a restarted daemon restores them and \
             answers warm immediately.")
  in
  let run () stdio socket tcp shards snapshot_dir cache_dir cache_entries
      table_pool queue_capacity workers request_timeout stats =
    guard @@ fun () ->
    let on_tcp_listen port =
      let host = match tcp with Some (h, _) -> h | None -> "127.0.0.1" in
      Logs.app (fun m -> m "serving on tcp %s:%d" host port)
    in
    if shards > 1 then begin
      if stdio then fail "--stdio cannot be combined with --shards";
      if socket = None && tcp = None then
        fail "serve --shards needs --socket PATH and/or --tcp [HOST:]PORT";
      let dir =
        match socket with
        | Some s -> s ^ ".shards"
        | None ->
            Filename.concat
              (Filename.get_temp_dir_name ())
              (Printf.sprintf "ia-rank-shards-%d" (Unix.getpid ()))
      in
      let fleet =
        match
          Ir_serve.Shard.start ~workers ~cache_entries ~table_pool
            ~queue_capacity ~request_timeout ?cache_dir ?snapshot_dir
            ~exe:Sys.executable_name ~shards ~dir ()
        with
        | Ok f -> f
        | Error e -> fail "shards: %s" e
      in
      let stop _ = Ir_serve.Shard.shutdown fleet in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Option.iter (fun s -> Logs.app (fun m -> m "serving on %s" s)) socket;
      (match Ir_serve.Shard.serve fleet ?tcp ~on_tcp_listen ?socket () with
      | Ok () -> ()
      | Error e -> fail "serve: %s" e);
      print_stats stats
    end
    else begin
      let cache =
        match
          Ir_serve.Cache.create ~capacity:cache_entries ?dir:cache_dir ()
        with
        | Ok c -> c
        | Error e -> fail "cache: %s" e
      in
      let snapshot =
        Option.map
          (fun d ->
            match Ir_serve.Snapshot.create ~dir:d with
            | Ok s -> s
            | Error e -> fail "snapshot: %s" e)
          snapshot_dir
      in
      let srv =
        Ir_serve.Server.create ~workers ~queue_capacity ~table_pool
          ~request_timeout ?snapshot ~cache ()
      in
      let finish () =
        Ir_serve.Server.shutdown srv;
        Ir_serve.Server.join srv;
        print_stats stats
      in
      if stdio then begin
        Ir_serve.Server.serve_stdio srv stdin stdout;
        finish ()
      end
      else if socket = None && tcp = None then
        fail "serve needs --socket PATH, --tcp [HOST:]PORT or --stdio"
      else begin
        (* [shutdown] is an atomic flag plus a self-pipe write, so it is
           safe to call straight from the signal handler; the accept
           loop notices via select and drains. *)
        let stop _ = Ir_serve.Server.shutdown srv in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Option.iter (fun s -> Logs.app (fun m -> m "serving on %s" s)) socket;
        (match
           Ir_serve.Server.serve_listeners srv ?tcp ~on_tcp_listen ?socket ()
         with
        | Ok () -> ()
        | Error e -> fail "serve: %s" e);
        finish ()
      end
    end
  in
  let term =
    Term.(
      const run $ logs_term $ stdio $ socket_arg $ tcp_arg $ shards
      $ snapshot_dir $ cache_dir $ cache_entries $ table_pool $ queue_capacity
      $ workers $ request_timeout $ stats_flag)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the rank query daemon: content-addressed result cache, \
             request coalescing, warm DP-table reuse; optionally sharded \
             across processes behind a TCP listener.")
    term

(* ---- query ------------------------------------------------------------ *)

let query_cmd =
  let rent =
    Arg.(
      value & opt float 0.6
      & info [ "rent" ] ~docv:"P" ~doc:"Rent exponent of the Davis WLD.")
  in
  let fan_out =
    Arg.(
      value & opt float 3.0
      & info [ "fan-out" ] ~docv:"F" ~doc:"Average fan-out of the Davis WLD.")
  in
  let wld_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "wld" ] ~docv:"FILE"
          ~doc:"Send the WLD from $(docv) (CSV, strictly ascending \
                lengths) instead of the design's Davis distribution.")
  in
  let greedy =
    Arg.(
      value & flag
      & info [ "greedy" ] ~doc:"Use the greedy baseline algorithm.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the canonical result payload (JSON) instead of the \
                human form.")
  in
  let ping =
    Arg.(
      value & flag
      & info [ "ping" ] ~doc:"Just check that the server is answering.")
  in
  let server_stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the server's counters instead of querying (against a \
             sharded router: fleet-wide aggregated counters).")
  in
  let run () socket tcp node gates clock fraction k m bunch_size rent fan_out
      wld_file greedy activity power_budget json ping server_stats =
    guard @@ fun () ->
    let client =
      match (socket, tcp) with
      | Some _, Some _ -> fail "query takes --socket or --tcp, not both"
      | None, None -> fail "query needs --socket PATH or --tcp [HOST:]PORT"
      | Some socket, None -> (
          match Ir_serve.Client.connect ~socket with
          | Ok c -> c
          | Error e -> fail "%s" e)
      | None, Some (host, port) -> (
          match Ir_serve.Client.connect_tcp ~host ~port with
          | Ok c -> c
          | Error e -> fail "%s" e)
    in
    Fun.protect ~finally:(fun () -> Ir_serve.Client.close client)
    @@ fun () ->
    if ping then (
      match Ir_serve.Client.ping client with
      | Ok () -> Format.printf "pong@."
      | Error e -> fail "%s" e)
    else if server_stats then (
      match Ir_serve.Client.stats client with
      | Ok kvs ->
          List.iter (fun (name, v) -> Format.printf "%s: %d@." name v) kvs
      | Error e -> fail "%s" e)
    else begin
      let wld_csv =
        Option.map
          (fun path ->
            match In_channel.with_open_text path In_channel.input_all with
            | s -> s
            | exception Sys_error e -> fail "cannot read %s: %s" path e)
          wld_file
      in
      (* Send the power fields only when they can change the answer —
         the same convention the fingerprint uses — so default-flag
         queries keep their historical wire form and digests. *)
      let power_budget =
        if power_budget < infinity then Some power_budget else None
      in
      let activity =
        if
          activity <> Ir_assign.Problem.default_activity
          && power_budget <> None
        then Some activity
        else None
      in
      let q =
        Ir_serve.Protocol.query ~rent_p:rent ~fan_out ~clock:(clock *. 1e9)
          ~repeater_fraction:fraction ~k ~miller:m ~bunch_size ~greedy
          ?power_budget ?activity ?wld_csv
          ~node:(Ir_tech.Node.name node)
          ~gates ()
      in
      match Ir_serve.Client.query client q with
      | Error e -> fail "%s" e
      | Ok (outcome, source, payload) ->
          if json then print_string (payload ^ "\n")
          else
            Format.printf "%a@.(served from %s)@." Ir_core.Outcome.pp_human
              outcome source;
          if not outcome.assignable then exit 2
    end
  in
  let term =
    Term.(
      const run $ logs_term $ socket_arg $ tcp_arg $ node $ gates $ clock
      $ fraction $ permittivity $ miller $ bunch_size $ rent $ fan_out
      $ wld_file $ greedy $ activity_arg $ power_budget_arg $ json $ ping
      $ server_stats)
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Ask a running serve daemon for a rank (exit 2 when the design \
             is unassignable, like $(b,rank)).")
    term

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "ia_rank" ~version:"1.0.0"
             ~doc:
               "Rank metric for interconnect architectures (DATE 2003 \
                reproduction).")
          [ rank_cmd; table4_cmd; power_cmd; cross_cmd; figure2_cmd;
            tables_cmd; assign_cmd; layers_cmd; ntier_cmd; optimize_cmd;
            wld_cmd; variation_cmd; serve_cmd; query_cmd ]))
